#!/usr/bin/env bash
# Correctness analysis driver (docs/ANALYSIS.md): builds and tests the tree
# under the full analysis matrix and prints a per-leg summary table. Exits
# nonzero if any leg fails.
#
# Legs:
#   analyze       build tools/analyze and run msd_analyze over src/ (human
#                 report plus --json, which must parse); any unsuppressed
#                 finding fails the leg. The run also asserts hot-path BFS
#                 coverage of the planner executor (--require-reachable
#                 CompiledPlan::Execute / InferenceSession::RunPlanned), of
#                 the int8 kernel entry points (QGemmPrepacked /
#                 QuantizeActivationsPerRow), and of the multi-tenant serving
#                 core (SocketServer::Run, the epoll loop root, and
#                 ModelRegistry::Swap via the HandleLineAsync -> RELOAD
#                 chain), so a lost call edge from a serving root cannot
#                 silently shrink what "0 findings" vouches for.
#   release       default configuration (MSD_NATIVE_ARCH=ON, checks OFF);
#                 full ctest run THREE times — MSD_PLAN=1 (compiled session
#                 plans, the default), MSD_PLAN=0 (the interpreted oracle),
#                 and MSD_PLAN=1 MSD_QUANT=1 (the int8 quantized plans,
#                 docs/PERFORMANCE.md) — including analyze_check and
#                 gradcheck_sweep, plus a
#                 quickstart run whose training losses are captured, a
#                 thread-scaling bench snapshot (BENCH_threads.json), a
#                 serving load snapshot (BENCH_serve.json from
#                 bench_serving --threads 4 --quantize --churn, including
#                 the serve/* histogram telemetry, the int8 leg's
#                 serve/quant_latency_* gauges, and the multi-tenant churn
#                 profile — 128 concurrent socket connections over two
#                 models with a mid-run RELOAD hot-swap, zero failed and
#                 zero version-crossed replies required, latencies in the
#                 serve/multi_latency_* gauges), and msd_serve --selftest
#                 passes — fp32 and MSD_QUANT=1 — that validate the
#                 telemetry exporter's JSONL output end to end.
#   debug-checks  MSD_DEBUG_CHECKS=ON; full ctest, and the quickstart losses
#                 must be bit-identical to the release leg — the invariant
#                 layer must observe, never perturb.
#   asan-ubsan    AddressSanitizer + UndefinedBehaviorSanitizer (abort on
#                 first finding); full ctest.
#   tsan          ThreadSanitizer over the full suite with MSD_THREADS=4, so
#                 every parallel kernel (src/runtime dispatch), the
#                 profiler's per-thread merge, the trainer path, and the
#                 serving stack (serve_test's concurrent micro-batcher
#                 clients, registry_test's concurrent Get/Swap hammer,
#                 netio_test's multi-connection epoll loop, exporter_test's
#                 trace-ring writer/reader races, msd_serve_selftest,
#                 bench_serving_smoke incl. the churn hot-swap phase) run on
#                 a real multi-threaded pool under the race detector.
#
# Usage: tools/check.sh [--tidy] [--jobs N] [--leg NAME]...
#        [--bench-baseline FILE] [--serve-baseline FILE]
#   --tidy     also run clang-tidy (src/common + src/tensor); skipped with a
#              note when clang-tidy is not installed.
#   --leg      run only the named leg(s); default is all five.
#   --jobs N   parallel build/test jobs (default: nproc).
#   --bench-baseline FILE
#              after the release leg, re-run the kernel benches in
#              google-benchmark JSON form — 7 repetitions, compared by
#              median — and gate them against FILE with tools/bench_compare
#              (>10% cpu_time growth on any common benchmark fails the
#              run). Thread-scaling variants above $(nproc) are excluded
#              from the filter: oversubscribed threads measure scheduler
#              time-slicing, not kernels. bench_compare refuses files whose
#              context is not stamped msd_build_type=release, so a
#              Debug-built recording can neither become nor be judged
#              against a baseline. The repo's committed reference is
#              BENCH_baseline.json; regenerate it when the hardware (or its
#              noise profile) changes by running the same bench_micro_kernels
#              command the gate uses — read it out of the release leg below,
#              or crib the filter from a check.sh run's log — with
#              --benchmark_out=BENCH_baseline.json from a Release ./build.
#   --serve-baseline FILE
#              gate the release leg's BENCH_serve.json serving snapshot
#              against FILE with tools/bench_compare. Tail latency is noisier
#              than kernel cpu_time, so the threshold is 25% AND (for the
#              microsecond-valued keys) an absolute 2.5ms noise floor: a
#              >25% growth in serve/latency_p99_us, serve/quant_latency_*,
#              or serve/multi_latency_* fails the run once it also clears
#              the floor scheduler jitter can produce on its own. Spans are
#              filtered to serve/* so the gate ignores the bench's own
#              model-training warmup timings.
#
# Build trees live in build-check/<leg> so they never disturb ./build.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TIDY=0
BENCH_BASELINE=""
SERVE_BASELINE=""
LEGS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --tidy) RUN_TIDY=1 ;;
    --jobs) JOBS="$2"; shift ;;
    --leg) LEGS+=("$2"); shift ;;
    --bench-baseline) BENCH_BASELINE="$2"; shift ;;
    --serve-baseline) SERVE_BASELINE="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done
[[ ${#LEGS[@]} -eq 0 ]] && LEGS=(analyze release debug-checks asan-ubsan tsan)

CHECK_DIR="${ROOT}/build-check"
mkdir -p "${CHECK_DIR}"

declare -A STATUS    # leg -> PASS / FAIL / SKIP
declare -A DETAIL    # leg -> one-line explanation
FAILED=0

note() { printf '\n==== %s ====\n' "$*"; }

fail_leg() {  # leg detail
  STATUS[$1]="FAIL"
  DETAIL[$1]="$2"
  FAILED=1
}

# A reused build tree whose cached MSD_SANITIZE disagrees with the leg's
# request would silently build the WRONG matrix cell (cmake does not reapply
# a -D that matches neither the cache nor the command line when the cache
# already has a value). Detect the mismatch and wipe the cache, failing fast
# if the wipe itself fails rather than proceeding against stale flags.
ensure_fresh_cache() {  # builddir cmake-args...
  local builddir="$1"; shift
  local cache="${builddir}/CMakeCache.txt"
  [[ -f "${cache}" ]] || return 0
  local want="" arg
  for arg in "$@"; do
    case "${arg}" in
      -DMSD_SANITIZE=*) want="${arg#-DMSD_SANITIZE=}" ;;
    esac
  done
  local have
  have="$(sed -n 's/^MSD_SANITIZE:[A-Za-z]*=//p' "${cache}")"
  [[ "${have}" == "${want}" ]] && return 0
  echo "stale MSD_SANITIZE cache in ${builddir} ('${have}' != '${want}'):" \
       "reconfiguring with a fresh cache" >&2
  if ! rm -rf "${cache}" "${builddir}/CMakeFiles"; then
    echo "failed to remove the stale cache in ${builddir}; aborting the" \
         "leg rather than building against wrong sanitizer flags" >&2
    return 1
  fi
}

configure_and_build() {  # builddir target... -- cmake-args...
  local builddir="$1"; shift
  local targets=()
  while [[ $# -gt 0 && "$1" != "--" ]]; do targets+=("$1"); shift; done
  [[ $# -gt 0 ]] && shift  # drop --
  ensure_fresh_cache "${builddir}" "$@" || return 1
  cmake -B "${builddir}" -S "${ROOT}" "$@" || return 1
  if [[ ${#targets[@]} -gt 0 ]]; then
    local t
    for t in "${targets[@]}"; do
      cmake --build "${builddir}" -j "${JOBS}" --target "${t}" || return 1
    done
  else
    cmake --build "${builddir}" -j "${JOBS}" || return 1
  fi
}

# Training losses only (strip wall-clock columns): the bit-identity contract
# is about numerics, not timing.
quickstart_losses() {  # builddir outfile
  "$1/examples/quickstart" |
    grep -E 'epoch +[0-9]+/|Test MSE|component S|residual:' |
    sed -E 's/ [0-9.]+s$//' > "$2"
}

run_release_like_leg() {  # leg-name extra-cmake-flag...
  local leg="$1"; shift
  local builddir="${CHECK_DIR}/${leg}"
  note "leg ${leg}: configure + build"
  if ! configure_and_build "${builddir}" -- "$@"; then
    fail_leg "${leg}" "build failed"; return
  fi
  if [[ "${leg}" == "release" ]]; then
    # The compiled plan path must be bit-identical to the interpreter
    # (docs/COMPILER.md), so the release leg runs the whole suite on both
    # sides of the toggle: MSD_PLAN=1 (planned, the default) and MSD_PLAN=0
    # (the interpreted oracle every plan is validated against).
    local plan
    for plan in 1 0; do
      note "leg ${leg}: ctest (MSD_PLAN=${plan})"
      if ! (cd "${builddir}" &&
            MSD_PLAN="${plan}" ctest --output-on-failure -j "${JOBS}"); then
        fail_leg "${leg}" "ctest failures (MSD_PLAN=${plan})"; return
      fi
    done
    # Third pass under the int8 quantization pass (docs/PERFORMANCE.md):
    # plans rewrite eligible GEMMs to the quantized kernels. Suites that
    # assert fp32 bit-exactness pin MSD_QUANT=0 themselves; everything else
    # must hold — including the dedicated quant suites, which now exercise
    # the env-on direction for free.
    note "leg ${leg}: ctest (MSD_PLAN=1 MSD_QUANT=1)"
    if ! (cd "${builddir}" &&
          MSD_PLAN=1 MSD_QUANT=1 ctest --output-on-failure -j "${JOBS}"); then
      fail_leg "${leg}" "ctest failures (MSD_PLAN=1 MSD_QUANT=1)"; return
    fi
  else
    note "leg ${leg}: ctest"
    if ! (cd "${builddir}" && ctest --output-on-failure -j "${JOBS}"); then
      fail_leg "${leg}" "ctest failures"; return
    fi
  fi
  note "leg ${leg}: quickstart"
  if ! quickstart_losses "${builddir}" "${builddir}/quickstart_losses.txt"; then
    fail_leg "${leg}" "quickstart run failed"; return
  fi
  STATUS[${leg}]="PASS"
  DETAIL[${leg}]="full ctest clean"
}

for leg in "${LEGS[@]}"; do
  case "${leg}" in
    analyze)
      builddir="${CHECK_DIR}/analyze"
      note "leg analyze: build msd_analyze"
      if ! configure_and_build "${builddir}" msd_analyze --; then
        fail_leg analyze "build failed"; continue
      fi
      # The human report lands on stderr (visible above); the machine report
      # is captured and must parse. Exit 1 means unsuppressed findings,
      # exit 2 a configuration error (e.g. a suppression without a
      # justification) — both fail the leg.
      # --require-reachable turns silent hot-path coverage loss into a
      # failure: the planner executor must stay visible to the BFS from the
      # PredictBatch root or a clean report proves nothing about it.
      note "leg analyze: msd_analyze over src/"
      json="${builddir}/analyze_report.json"
      if ! "${builddir}/tools/msd_analyze" --json \
          --require-reachable "InferenceSession::RunPlanned" \
          --require-reachable "CompiledPlan::Execute" \
          --require-reachable "QGemmPrepacked" \
          --require-reachable "QuantizeActivationsPerRow" \
          --require-reachable "SocketServer::Run" \
          --require-reachable "ModelRegistry::Swap" \
          "${ROOT}" > "${json}"; then
        fail_leg analyze "unsuppressed findings (report above)"; continue
      fi
      if command -v python3 >/dev/null 2>&1; then
        if ! python3 -m json.tool "${json}" > /dev/null; then
          fail_leg analyze "--json output is not valid JSON"; continue
        fi
        STATUS[analyze]="PASS"
        DETAIL[analyze]="0 unsuppressed findings; JSON report validated"
      else
        STATUS[analyze]="PASS"
        DETAIL[analyze]="0 unsuppressed findings (python3 absent; JSON unvalidated)"
      fi
      ;;
    release)
      run_release_like_leg release
      if [[ "${STATUS[release]}" == "PASS" ]]; then
        # Thread-scaling snapshot: the BM_*Threads family at pool sizes
        # 1/2/4, with kernel-level telemetry, recorded as BENCH_threads.json.
        note "leg release: thread-scaling bench snapshot"
        if "${CHECK_DIR}/release/bench/bench_micro_kernels" \
            --benchmark_filter='Threads' --benchmark_min_time=0.02 \
            --metrics-out "${CHECK_DIR}/release/BENCH_threads.json"; then
          DETAIL[release]="full ctest clean; BENCH_threads.json recorded"
        else
          fail_leg release "thread-scaling bench snapshot failed"
        fi
      fi
      if [[ "${STATUS[release]}" == "PASS" ]]; then
        # Serving load snapshot: 1000 closed-loop requests through the
        # micro-batcher on a 4-thread pool, latency percentiles and serve/*
        # telemetry recorded as BENCH_serve.json. --quantize adds a second
        # phase against an int8 session over the same checkpoint, so the
        # snapshot also carries serve/quant_latency_* for the baseline gate.
        # --churn appends the multi-tenant profile: 128 concurrent socket
        # connections over a two-model manifest with a RELOAD hot-swap
        # mid-run; the bench exits nonzero on any failed request or any
        # reply matching neither the pre- nor post-swap oracle, and its
        # latencies land in serve/multi_latency_* for the same gate.
        note "leg release: serving load snapshot (fp32 + int8 + churn)"
        if "${CHECK_DIR}/release/bench/bench_serving" \
            --threads 4 --requests 4000 --quantize \
            --churn --conns 128 --churn-requests 4000 \
            --metrics-out "${CHECK_DIR}/release/BENCH_serve.json"; then
          DETAIL[release]="${DETAIL[release]}; BENCH_serve.json recorded"
        else
          fail_leg release "serving load snapshot failed"
        fi
      fi
      if [[ "${STATUS[release]}" == "PASS" ]]; then
        # Serving telemetry self-check: --selftest drives the STATS / TRACE
        # admin commands against a live server and validates every JSONL
        # line the exporter wrote (ts_ms/seq/metrics schema, parsed with
        # src/obs/json.h) before exiting.
        note "leg release: msd_serve selftest + telemetry validation"
        if "${CHECK_DIR}/release/tools/msd_serve" --selftest \
            --telemetry-out "${CHECK_DIR}/release/selftest_telemetry.jsonl"; then
          DETAIL[release]="${DETAIL[release]}; telemetry JSONL validated"
        else
          fail_leg release "msd_serve selftest / telemetry validation failed"
        fi
      fi
      if [[ "${STATUS[release]}" == "PASS" ]]; then
        # Same selftest with the planned session on the int8 path: replies
        # must stay within the quantization accuracy contract against the
        # fp32 interpreted oracle, and the plan must have adopted int8
        # steps (the selftest asserts both itself under MSD_QUANT=1).
        note "leg release: msd_serve selftest (MSD_QUANT=1)"
        if MSD_QUANT=1 "${CHECK_DIR}/release/tools/msd_serve" --selftest \
            --telemetry-out \
            "${CHECK_DIR}/release/selftest_quant_telemetry.jsonl"; then
          DETAIL[release]="${DETAIL[release]}; int8 selftest clean"
        else
          fail_leg release "msd_serve selftest failed under MSD_QUANT=1"
        fi
      fi
      if [[ "${STATUS[release]}" == "PASS" && -n "${SERVE_BASELINE}" ]]; then
        # Serving perf gate: p50/p95/p99 latency gauges vs the baseline
        # snapshot; 25% threshold (tail latency is noisier than cpu_time)
        # plus a 2.5ms absolute floor on the microsecond-valued keys —
        # client-exact p99s over a few thousand samples move by whole
        # milliseconds from scheduler jitter alone, so a relative-only gate
        # on the ~2ms single-model tails flakes; the floor is negligible
        # against the churn profile's tens-of-millisecond quantiles.
        # --span-filter serve/ keeps the gate on serving spans only: the
        # snapshot also records train/* and autograd/* spans from the
        # bench's model-training warmup, and a slow warmup epoch is not a
        # serving regression.
        note "leg release: bench_compare (serving) vs ${SERVE_BASELINE}"
        if "${CHECK_DIR}/release/tools/bench_compare" \
              "${SERVE_BASELINE}" "${CHECK_DIR}/release/BENCH_serve.json" \
              --threshold 25 --noise-floor-us 2500 --span-filter serve/; then
          DETAIL[release]="${DETAIL[release]}; serving within baseline"
        else
          fail_leg release "serving latency regression vs ${SERVE_BASELINE}"
        fi
      fi
      if [[ "${STATUS[release]}" == "PASS" && -n "${BENCH_BASELINE}" ]]; then
        # Perf gate: the kernel benches (GEMM family, fused epilogues, rfft)
        # against the committed baseline; >10% median cpu_time growth fails.
        # 7 repetitions, medians compared, so a burst of descheduled
        # repetitions cannot fake (or mask) a regression; bench_compare also
        # refuses either file if its context is not stamped
        # msd_build_type=release. Thread-scaling variants above the
        # machine's core count are excluded: with more threads than cores
        # their runtime is the scheduler's time-slicing pattern, not kernel
        # code, and on a 1-core box BM_*Threads/4 swings 15%+ between
        # identical runs.
        note "leg release: bench_compare vs ${BENCH_BASELINE}"
        cores="$(nproc)"
        if   (( cores >= 4 )); then tsuf='/(1|2|4)'
        elif (( cores >= 2 )); then tsuf='/(1|2)'
        else                        tsuf='/1'; fi
        kernel_filter="BM_MatMul2D|BM_BatchedMatMul|BM_Fft|BM_Rfft/|(BM_GemmChannelMixThreads|BM_GemmHeadThreads|BM_GemmPatchEmbedThreads|BM_RfftThreads)${tsuf}\$"
        current="${CHECK_DIR}/release/BENCH_current.json"
        if "${CHECK_DIR}/release/bench/bench_micro_kernels" \
              --benchmark_filter="${kernel_filter}" \
              --benchmark_min_time=0.05 --benchmark_repetitions=7 \
              --benchmark_out="${current}" --benchmark_out_format=json &&
            "${CHECK_DIR}/release/tools/bench_compare" \
              "${BENCH_BASELINE}" "${current}" --repetitions 7; then
          DETAIL[release]="${DETAIL[release]}; bench within baseline"
        else
          fail_leg release "bench regression vs ${BENCH_BASELINE}"
        fi
      fi
      ;;
    debug-checks)
      run_release_like_leg debug-checks -DMSD_DEBUG_CHECKS=ON
      # Zero-interference: checks may observe training, never change it.
      rel="${CHECK_DIR}/release/quickstart_losses.txt"
      dbg="${CHECK_DIR}/debug-checks/quickstart_losses.txt"
      if [[ "${STATUS[debug-checks]}" == "PASS" && -f "${rel}" ]]; then
        if diff -u "${rel}" "${dbg}"; then
          DETAIL[debug-checks]="ctest clean; losses bit-identical to release"
        else
          fail_leg debug-checks "quickstart losses differ from release leg"
        fi
      fi
      ;;
    asan-ubsan)
      # -march=native off: sanitizer runs should reproduce across machines.
      run_release_like_leg asan-ubsan \
        -DMSD_SANITIZE=address,undefined -DMSD_NATIVE_ARCH=OFF
      ;;
    tsan)
      builddir="${CHECK_DIR}/tsan"
      note "leg tsan: configure + build"
      if ! configure_and_build "${builddir}" -- \
          -DMSD_SANITIZE=thread -DMSD_NATIVE_ARCH=OFF; then
        fail_leg tsan "build failed"; continue
      fi
      note "leg tsan: full ctest at MSD_THREADS=4"
      # MSD_THREADS=4 forces the pool path (not the serial fallback) in every
      # parallel kernel while the race detector watches.
      if (cd "${builddir}" &&
          MSD_THREADS=4 ctest --output-on-failure -j "${JOBS}"); then
        STATUS[tsan]="PASS"; DETAIL[tsan]="full ctest clean at MSD_THREADS=4"
      else
        fail_leg tsan "ctest failures under ThreadSanitizer (MSD_THREADS=4)"
      fi
      ;;
    *)
      echo "unknown leg: ${leg}" >&2; exit 2
      ;;
  esac
done

if [[ ${RUN_TIDY} -eq 1 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    note "clang-tidy (src/common, src/tensor)"
    tidydir="${CHECK_DIR}/tidy"
    if configure_and_build "${tidydir}" msd_analyze -- \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON &&
        find "${ROOT}/src/common" "${ROOT}/src/tensor" \
            -name '*.cc' -o -name '*.h' |
          xargs clang-tidy -p "${tidydir}" --warnings-as-errors='*'; then
      STATUS[tidy]="PASS"; DETAIL[tidy]="no diagnostics"
    else
      fail_leg tidy "clang-tidy diagnostics"
    fi
  else
    STATUS[tidy]="SKIP"
    DETAIL[tidy]="clang-tidy not installed"
  fi
fi

printf '\n%-14s %-6s %s\n' "leg" "status" "detail"
printf '%s\n' "--------------------------------------------------------------"
for leg in "${LEGS[@]}" $( [[ ${RUN_TIDY} -eq 1 ]] && echo tidy ); do
  printf '%-14s %-6s %s\n' "${leg}" "${STATUS[${leg}]:-SKIP}" \
    "${DETAIL[${leg}]:-not run}"
done

exit "${FAILED}"
