// Repo lint: mechanical style/correctness rules the compiler cannot enforce,
// run over `src/` as the `lint_check` ctest (see docs/ANALYSIS.md).
//
// Rules:
//   no-assert      <assert.h> assertions vanish under NDEBUG and print no
//                  operands; library code must use MSD_CHECK (common/check.h).
//   no-cout        std::cout in library code corrupts programs that treat
//                  stdout as a data channel (CSV export, JSON snapshots);
//                  diagnostics belong on stderr, telemetry in src/obs.
//   header-guard   every header needs #pragma once or a #ifndef/#define
//                  include guard near the top.
//   include-path   includes are rooted at src/ (CMake adds it to the include
//                  path): no "src/..." or "../" relative spellings, which
//                  break when a file moves and defeat include-what-you-use.
//   no-raw-alloc   src/tensor and src/autograd own the hot allocation paths;
//                  raw new/malloc there bypasses the shared_ptr ownership
//                  model and the tensor/allocs telemetry.
//   no-raw-thread  src/runtime owns all thread spawning; raw std::thread /
//                  std::jthread / std::async elsewhere bypasses the pool and
//                  breaks the MSD_THREADS determinism contract
//                  (docs/RUNTIME.md).
//   no-raw-buffer  float buffers in src/tensor must come from the size-class
//                  pool (tensor/pool.h) so steady-state training recycles
//                  instead of hitting the system allocator; constructing a
//                  std::vector<float> there bypasses it. References are fine
//                  (they don't allocate), as are the files that implement
//                  the allocation path itself.
//   no-blocking-io-in-serve-hot-path
//                  src/serve is request-latency code: a file or stdio call
//                  inside the batcher/worker cycle stalls every request in
//                  the batch behind a syscall. Transport and logging IO
//                  belong in the front-ends (tools/msd_serve, bench).
//                  snprintf-style pure formatting is fine.
//   metric-name-taxonomy
//                  string literals passed to GetCounter/GetGauge/
//                  GetHistogram must follow the docs/OBSERVABILITY.md
//                  taxonomy: two or more '/'-separated segments of
//                  [a-z0-9_] ("serve/queue_us"), so dashboards can group by
//                  subsystem prefix. Dynamically-built names are not
//                  statically checkable and are skipped.
//
// Usage: msd_lint <repo-root> — prints violations as file:line: rule:
// message and exits nonzero if any rule fired. Add a rule by extending
// CheckLine()/CheckHeaderGuard() and documenting it in docs/ANALYSIS.md.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // repo-relative
  int line = 0;
  std::string rule;
  std::string message;
};

// Library files allowed to write to std::cout (none today; CLI binaries live
// in examples/ and bench/, outside the linted tree).
const std::set<std::string>& CoutAllowlist() {
  static const std::set<std::string> allowlist = {};
  return allowlist;
}

// Files that implement Tensor's allocation path and so legitimately create
// float buffers directly (the no-raw-buffer rule exempts them).
const std::set<std::string>& BufferOwnerAllowlist() {
  static const std::set<std::string> allowlist = {
      "src/tensor/tensor.h",
      "src/tensor/tensor.cc",
      "src/tensor/pool.h",
      "src/tensor/pool.cc",
  };
  return allowlist;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Replaces comment bodies — and, when `strip_literals` is set, string and
// character literal contents — with spaces, preserving line breaks so
// reported line numbers stay exact. Include-path rules need literals kept
// (the include path IS a string literal); token rules need them blanked.
// Raw string literals are not handled (the tree does not use them); the
// scanner treats them as ordinary strings.
std::string StripComments(const std::string& text, bool strip_literals) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string out = text;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char terminator = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          if (strip_literals) out[i] = ' ';
          if (next != '\n') {
            if (strip_literals && i + 1 < text.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == terminator) {
          state = State::kCode;
        } else if (c != '\n' && strip_literals) {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

// True when `token` appears in `line` as a whole word at position `pos`.
bool IsWholeWordAt(const std::string& line, size_t pos, size_t len) {
  if (pos > 0 && IsWordChar(line[pos - 1])) return false;
  const size_t end = pos + len;
  if (end < line.size() && IsWordChar(line[end])) return false;
  return true;
}

// Finds `token` as a whole word followed (after optional spaces) by '('.
bool HasCallToken(const std::string& line, const std::string& token) {
  for (size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (!IsWholeWordAt(line, pos, token.size())) continue;
    size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

bool HasWordToken(const std::string& line, const std::string& token) {
  for (size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (IsWholeWordAt(line, pos, token.size())) return true;
  }
  return false;
}

// Finds `std::vector<float>` used as an owning buffer: the token NOT
// followed (after optional spaces) by '&'. A reference never allocates, so
// `const std::vector<float>&` parameters stay legal outside the allocator.
bool HasOwningFloatVector(const std::string& line) {
  const std::string token = "std::vector<float>";
  for (size_t pos = line.find(token); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos > 0 && IsWordChar(line[pos - 1])) continue;
    size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '&') continue;
    return true;
  }
  return false;
}

// "serve/queue_us"-style taxonomy: at least two non-empty '/'-separated
// segments, each limited to [a-z0-9_]. (Hand-rolled — std::regex is avoided,
// see CheckHeaderGuard.)
bool IsTaxonomyName(const std::string& name) {
  int segments = 1;
  bool segment_empty = true;
  for (const char c : name) {
    if (c == '/') {
      if (segment_empty) return false;
      ++segments;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return segments >= 2 && !segment_empty;
}

// metric-name-taxonomy: scans the whole file (literals kept, comments
// blanked) so registry calls whose name literal sits on the next line are
// still caught. Calls whose first argument is not a string literal carry a
// dynamically-built name and are skipped.
void CheckMetricNames(const std::string& directive_text, const std::string& rel,
                      std::vector<Violation>* violations) {
  const size_t size = directive_text.size();
  for (const char* call : {"GetCounter", "GetGauge", "GetHistogram"}) {
    const std::string token = call;
    for (size_t pos = directive_text.find(token); pos != std::string::npos;
         pos = directive_text.find(token, pos + 1)) {
      if (!IsWholeWordAt(directive_text, pos, token.size())) continue;
      size_t after = pos + token.size();
      while (after < size &&
             std::isspace(static_cast<unsigned char>(directive_text[after])) !=
                 0) {
        ++after;
      }
      if (after >= size || directive_text[after] != '(') continue;
      ++after;
      while (after < size &&
             std::isspace(static_cast<unsigned char>(directive_text[after])) !=
                 0) {
        ++after;
      }
      if (after >= size || directive_text[after] != '"') continue;
      const size_t name_start = after + 1;
      const size_t name_end = directive_text.find('"', name_start);
      if (name_end == std::string::npos) continue;
      const std::string name =
          directive_text.substr(name_start, name_end - name_start);
      if (!IsTaxonomyName(name)) {
        const int line_number =
            1 + static_cast<int>(std::count(
                    directive_text.begin(),
                    directive_text.begin() + static_cast<std::ptrdiff_t>(pos),
                    '\n'));
        violations->push_back(
            {rel, line_number, "metric-name-taxonomy",
             "metric name \"" + name +
                 "\" must be two or more '/'-separated [a-z0-9_] segments "
                 "(docs/OBSERVABILITY.md taxonomy)"});
      }
    }
  }
}

void CheckHeaderGuard(const std::string& raw_text, const std::string& rel,
                      std::vector<Violation>* violations) {
  if (raw_text.find("#pragma once") != std::string::npos) return;
  // Hand-rolled #ifndef parse (std::regex is avoided: its libstdc++ headers
  // trip -Werror=maybe-uninitialized under the GCC 12 sanitizer builds).
  const size_t ifndef = raw_text.find("#ifndef");
  if (ifndef != std::string::npos) {
    size_t pos = ifndef + 7;
    while (pos < raw_text.size() &&
           (raw_text[pos] == ' ' || raw_text[pos] == '\t')) {
      ++pos;
    }
    const size_t name_start = pos;
    while (pos < raw_text.size() && IsWordChar(raw_text[pos])) ++pos;
    if (pos > name_start) {
      const std::string guard =
          "#define " + raw_text.substr(name_start, pos - name_start);
      if (raw_text.find(guard) != std::string::npos) return;
    }
  }
  violations->push_back({rel, 1, "header-guard",
                         "header has neither #pragma once nor a matching "
                         "#ifndef/#define include guard"});
}

void CheckFile(const fs::path& path, const std::string& rel,
               std::vector<Violation>* violations) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string raw_text = buffer.str();
  const std::string code_text =
      StripComments(raw_text, /*strip_literals=*/true);
  const std::string directive_text =
      StripComments(raw_text, /*strip_literals=*/false);

  if (path.extension() == ".h") CheckHeaderGuard(raw_text, rel, violations);
  CheckMetricNames(directive_text, rel, violations);

  const bool alloc_sensitive = rel.rfind("src/tensor/", 0) == 0 ||
                               rel.rfind("src/autograd/", 0) == 0;
  const bool cout_allowed = CoutAllowlist().count(rel) > 0;
  const bool thread_owner = rel.rfind("src/runtime/", 0) == 0;
  const bool buffer_sensitive = rel.rfind("src/tensor/", 0) == 0 &&
                                BufferOwnerAllowlist().count(rel) == 0;
  const bool serve_hot_path = rel.rfind("src/serve/", 0) == 0;

  std::istringstream lines(code_text);
  std::istringstream directive_lines(directive_text);
  std::string line;
  std::string directive_line;
  int line_number = 0;
  while (std::getline(lines, line) &&
         std::getline(directive_lines, directive_line)) {
    ++line_number;
    if (HasCallToken(line, "assert")) {
      violations->push_back({rel, line_number, "no-assert",
                             "use MSD_CHECK (common/check.h) instead of "
                             "assert: it survives NDEBUG and prints operands"});
    }
    if (!cout_allowed && line.find("std::cout") != std::string::npos) {
      violations->push_back({rel, line_number, "no-cout",
                             "library code must not write to std::cout; use "
                             "stderr or the obs subsystem"});
    }
    if (directive_line.find("#include \"src/") != std::string::npos) {
      violations->push_back({rel, line_number, "include-path",
                             "includes are rooted at src/: drop the src/ "
                             "prefix"});
    }
    if (directive_line.find("#include \"../") != std::string::npos) {
      violations->push_back({rel, line_number, "include-path",
                             "no parent-relative includes; spell the path "
                             "from src/"});
    }
    if (!thread_owner) {
      for (const char* token :
           {"std::thread", "std::jthread", "std::async"}) {
        // IsWholeWordAt also rejects "std::thread::id" etc. only on the word
        // boundary side; the "::" suffix is fine — any spawn or member use of
        // these types belongs behind the runtime pool.
        if (HasWordToken(line, token)) {
          violations->push_back(
              {rel, line_number, "no-raw-thread",
               std::string(token) +
                   " outside src/runtime/: parallelism must go through "
                   "runtime::ParallelFor so MSD_THREADS determinism holds"});
        }
      }
    }
    if (serve_hot_path) {
      // Blocking C stdio calls (snprintf/vsnprintf format into memory and
      // are deliberately absent; whole-word matching keeps them legal).
      for (const char* fn :
           {"fopen", "freopen", "fclose", "fread", "fwrite", "fprintf",
            "printf", "fscanf", "scanf", "fgets", "fputs", "puts", "fflush",
            "getchar", "putchar", "getline", "system"}) {
        if (HasCallToken(line, fn)) {
          violations->push_back(
              {rel, line_number, "no-blocking-io-in-serve-hot-path",
               std::string(fn) +
                   " in src/serve stalls every request in the batch; move "
                   "transport/logging IO to the serving front-ends"});
        }
      }
      for (const char* token :
           {"std::ifstream", "std::ofstream", "std::fstream", "std::cin",
            "std::cerr", "std::clog", "std::FILE"}) {
        if (HasWordToken(line, token)) {
          violations->push_back(
              {rel, line_number, "no-blocking-io-in-serve-hot-path",
               std::string(token) +
                   " in src/serve stalls every request in the batch; move "
                   "transport/logging IO to the serving front-ends"});
        }
      }
    }
    if (buffer_sensitive && HasOwningFloatVector(line)) {
      violations->push_back(
          {rel, line_number, "no-raw-buffer",
           "float buffers in src/tensor come from pool::AllocateShared "
           "(tensor/pool.h) or Tensor itself, not std::vector<float>"});
    }
    if (alloc_sensitive) {
      if (HasWordToken(line, "new") && !HasWordToken(line, "delete")) {
        violations->push_back({rel, line_number, "no-raw-alloc",
                               "no raw new in tensor/autograd; use "
                               "make_shared/make_unique ownership"});
      }
      for (const char* fn : {"malloc", "calloc", "realloc", "free"}) {
        if (HasCallToken(line, fn)) {
          violations->push_back({rel, line_number, "no-raw-alloc",
                                 std::string("no ") + fn +
                                     " in tensor/autograd; use RAII "
                                     "containers"});
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: msd_lint <repo-root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "msd_lint: %s is not a directory\n",
                 src.string().c_str());
    return 2;
  }

  std::vector<Violation> violations;
  int64_t files_checked = 0;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".h" && ext != ".cc") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    ++files_checked;
    CheckFile(path, fs::relative(path, root).generic_string(), &violations);
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%d: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::fprintf(stderr, "msd_lint: %lld files, %lld violation(s)\n",
               static_cast<long long>(files_checked),
               static_cast<long long>(violations.size()));
  return violations.empty() ? 0 : 1;
}
