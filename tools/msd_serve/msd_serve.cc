// Serving CLI (docs/SERVING.md): restores one or many ForecastPipeline
// checkpoints into frozen serve::InferenceSessions behind a
// serve::ModelRegistry and answers text-protocol requests — one window per
// line, channels separated by ';', values by ','; the reply is the forecast
// in the same layout or "ERROR <code>: <message>". Requests may address a
// model explicitly with a "MODEL <name> " prefix; without it the manifest's
// default model answers.
//
//   msd_serve <checkpoint> [--lookback N] [--horizon N] [--model-dim N]
//             [--hidden-dim N] [--max-batch N] [--max-inflight N]
//             [--max-delay-us N] [--workers N] [--socket PATH]
//             [--max-conns N] [--backlog N] [--telemetry-out FILE]
//             [--telemetry-interval-ms N] [--trace-sample N]
//   msd_serve --manifest FILE [--max-batch N] [--max-delay-us N] ...
//   msd_serve --selftest [--telemetry-out FILE]
//
// --manifest FILE serves a whole fleet: one `model name=... version=...
// checkpoint=...` line per tenant (serve/registry.h documents the keys).
// The single-checkpoint form is sugar for a one-entry manifest whose model
// is named "default".
//
// By default requests are read from stdin and answered on stdout (shell
// pipelines, smoke tests). With --socket PATH the tool listens on an
// AF_UNIX stream socket through serve::SocketServer — an epoll loop that
// multiplexes up to --max-conns concurrent connections and resolves
// requests through the batchers' async path, so slow clients never block
// each other. Admin commands: STATS (per-model counters included), LIST,
// RELOAD <model> <checkpoint> (atomic hot-swap; in-flight requests finish
// on the old session), TRACE <path>.
//
// --selftest trains small pipelines on synthetic data and exercises the
// full stack against itself: the single-model phase answers every data
// request through BOTH a planned session (MSD_PLAN=1, docs/COMPILER.md)
// and an interpreted one (MSD_PLAN=0) and requires byte-identical replies
// (degraded to the 2% quantization accuracy contract under MSD_QUANT=1);
// the multi-model phase drives a two-tenant manifest through MODEL-prefixed
// routing, LIST, a live RELOAD hot-swap, per-model STATS counters and a
// round trip over a real SocketServer connection, memcmp'ing every data
// reply against a direct oracle session over the same checkpoint. Exits
// nonzero on any mismatch — this is the msd_serve_selftest ctest.
//
// Telemetry: a background obs::TelemetryExporter appends a JSONL registry
// snapshot to --telemetry-out every --telemetry-interval-ms and services
// the `TRACE <path>` admin command (chrome://tracing dump of the sampled
// request ring; --trace-sample N keeps 1-in-N requests, 0 disables).
//
// All transport IO lives here or in serve/netio.cc (raw non-blocking
// syscalls); the no-blocking-io-in-serve-hot-path lint rule keeps the
// engine itself free of buffered stdio. SIGPIPE is ignored process-wide so
// a vanished client surfaces as EPIPE on write, not a process kill.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "datagen/series_builder.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/ring.h"
#include "runtime/worker.h"
#include "serve/netio.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace msd;

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

int64_t IntFlag(int argc, char** argv, const std::string& flag,
                int64_t fallback) {
  const std::string v = FlagValue(argc, argv, flag);
  return v.empty() ? fallback : std::atoll(v.c_str());
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <checkpoint> [--lookback N] [--horizon N]\n"
               "          [--model-dim N] [--hidden-dim N] [--max-batch N]\n"
               "          [--max-inflight N] [--max-delay-us N] [--workers N]\n"
               "          [--socket PATH] [--max-conns N] [--backlog N]\n"
               "          [--telemetry-out FILE] [--telemetry-interval-ms N]\n"
               "          [--trace-sample N]\n"
               "       %s --manifest FILE [serving flags as above]\n"
               "       %s --selftest [--telemetry-out FILE]\n",
               argv0, argv0, argv0);
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  std::fclose(f);
  return true;
}

// Reads `path` and checks every line is a self-contained JSON snapshot with
// the schema the exporter promises ({"ts_ms":..,"seq":..,"metrics":{...}}
// with the serve counters present). Returns the number of problems found.
int ValidateTelemetryFile(const std::string& path, int64_t min_lines) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  int64_t lines = 0;
  char line[1 << 16];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lines;
    obs::JsonValue doc;
    if (!obs::JsonParse(line, &doc) || !doc.is_object()) {
      std::fprintf(stderr, "telemetry: line %lld is not valid JSON\n",
                   (long long)lines);
      ++failures;
      continue;
    }
    const obs::JsonValue* ts = doc.Find("ts_ms");
    const obs::JsonValue* seq = doc.Find("seq");
    const obs::JsonValue* metrics = doc.Find("metrics");
    if (ts == nullptr || !ts->is_number() || seq == nullptr ||
        !seq->is_number() || metrics == nullptr || !metrics->is_object()) {
      std::fprintf(stderr, "telemetry: line %lld misses ts_ms/seq/metrics\n",
                   (long long)lines);
      ++failures;
      continue;
    }
    const obs::JsonValue* counters = metrics->Find("counters");
    if (counters == nullptr ||
        counters->Find("serve/requests_total") == nullptr) {
      std::fprintf(stderr,
                   "telemetry: line %lld misses serve/requests_total\n",
                   (long long)lines);
      ++failures;
    }
  }
  std::fclose(f);
  if (lines < min_lines) {
    std::fprintf(stderr, "telemetry: %s has %lld lines, expected >= %lld\n",
                 path.c_str(), (long long)lines, (long long)min_lines);
    ++failures;
  }
  return failures;
}

// Serves stdin line-by-line; EOF terminates cleanly.
int ServeStdin(serve::ModelService& service) {
  std::fprintf(stderr, "ready: one request per line on stdin\n");
  char line[1 << 16];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::string reply = service.HandleLine(line);
    std::printf("%s\n", reply.c_str());
    std::fflush(stdout);
  }
  return 0;
}

// --- blocking AF_UNIX client helpers (selftest + simple tooling) ---------

int ConnectUnix(const std::string& path) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

// Sends one request line and reads exactly one '\n'-framed reply.
std::string RoundTrip(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t w =
        send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return "ERROR Internal: client write failed";
    sent += static_cast<size_t>(w);
  }
  std::string reply;
  char c;
  for (;;) {
    const ssize_t n = read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return "ERROR Internal: client read failed";
    if (c == '\n') break;
    reply.push_back(c);
  }
  return reply;
}

ForecastPipelineConfig SelfTestPipelineConfig(int64_t horizon) {
  ForecastPipelineConfig pc;
  pc.lookback = 32;
  pc.horizon = horizon;
  pc.trainer.epochs = 2;
  pc.trainer.batch_size = 16;
  pc.trainer.max_batches_per_epoch = 8;
  pc.trainer.early_stop_patience = 0;
  return pc;
}

Tensor SelfTestSeries(uint64_t seed) {
  SeriesConfig series_config;
  series_config.name = "selftest";
  series_config.length = 400;
  series_config.seed = seed;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec channel;
    channel.level = 1.0 + c;
    channel.seasonals.push_back({24.0, 1.0, 0.4 * c, 2});
    channel.noise_sigma = 0.05;
    series_config.channels.push_back(channel);
  }
  return GenerateSeries(series_config);
}

// The two-tenant phase: manifest routing, LIST, live RELOAD, per-model
// STATS, and one round trip over a real epoll SocketServer connection.
// Every data reply is memcmp'd against a direct oracle session over the
// same checkpoint — the determinism contract makes matching replies
// byte-identical, so a misrouted or version-crossed reply cannot pass.
int MultiModelSelfTest() {
  int failures = 0;
  const Tensor series_a = SelfTestSeries(21);
  const Tensor series_b = SelfTestSeries(33);

  // Different horizons: a reply from the wrong tenant has the wrong shape.
  const ForecastPipelineConfig pa = SelfTestPipelineConfig(/*horizon=*/8);
  const ForecastPipelineConfig pb = SelfTestPipelineConfig(/*horizon=*/4);
  ForecastPipeline pipe_a(pa, /*seed=*/5);
  ForecastPipeline pipe_a2(pa, /*seed=*/13);  // the hot-swap replacement
  ForecastPipeline pipe_b(pb, /*seed=*/9);
  pipe_a.Fit(series_a);
  pipe_a2.Fit(series_a);
  pipe_b.Fit(series_b);

  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "msd_selftest_mm_%d", (int)getpid());
  const std::string ckpt_a = std::string(prefix) + "_a.msdckpt";
  const std::string ckpt_a2 = std::string(prefix) + "_a2.msdckpt";
  const std::string ckpt_b = std::string(prefix) + "_b.msdckpt";
  if (!pipe_a.Save(ckpt_a).ok() || !pipe_a2.Save(ckpt_a2).ok() ||
      !pipe_b.Save(ckpt_b).ok()) {
    std::fprintf(stderr, "selftest: multi-model save failed\n");
    return 1;
  }

  // The manifest goes through the real file path the --manifest flag uses.
  const std::string manifest_path = std::string(prefix) + ".manifest";
  {
    std::FILE* mf = std::fopen(manifest_path.c_str(), "w");
    if (mf == nullptr) {
      std::fprintf(stderr, "selftest: cannot write %s\n",
                   manifest_path.c_str());
      return 1;
    }
    std::fprintf(mf,
                 "# two-tenant selftest fleet\n"
                 "model name=alpha version=1 checkpoint=%s lookback=32 "
                 "horizon=8 default=1\n"
                 "model name=beta version=1 checkpoint=%s lookback=32 "
                 "horizon=4 max_inflight=64\n",
                 ckpt_a.c_str(), ckpt_b.c_str());
    std::fclose(mf);
  }
  std::string manifest_text;
  if (!ReadFileToString(manifest_path, &manifest_text)) {
    std::fprintf(stderr, "selftest: cannot read back %s\n",
                 manifest_path.c_str());
    return 1;
  }
  auto manifest = serve::ParseManifest(manifest_text);
  if (!manifest.ok()) {
    std::fprintf(stderr, "selftest: manifest rejected: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }

  // Oracles: direct sessions over the same checkpoints (same MSD_PLAN /
  // MSD_QUANT environment as the served sessions, so replies match bytes).
  serve::ForecastSessionOptions oa;
  oa.lookback = 32;
  oa.horizon = 8;
  serve::ForecastSessionOptions ob;
  ob.lookback = 32;
  ob.horizon = 4;
  auto oracle_a = serve::CreateForecastSession(ckpt_a, oa);
  auto oracle_a2 = serve::CreateForecastSession(ckpt_a2, oa);
  auto oracle_b = serve::CreateForecastSession(ckpt_b, ob);
  if (!oracle_a.ok() || !oracle_a2.ok() || !oracle_b.ok()) {
    std::fprintf(stderr, "selftest: oracle session failed\n");
    return 1;
  }
  // The oracle must see exactly the bytes the server parses: the request
  // line is %.6g-rounded, so the expected reply is computed from the
  // round-tripped window, making matching replies byte-identical.
  auto expect = [](serve::InferenceSession* session, const std::string& line) {
    auto window = serve::ParseWindowLine(line, /*channels=*/0, /*length=*/0);
    if (!window.ok()) return "ERROR " + window.status().ToString();
    auto out = session->Predict(window.value());
    return out.ok() ? serve::FormatTensorLine(out.value())
                    : "ERROR " + out.status().ToString();
  };

  {
    // The SocketServer outlives the registry (completions Post through it
    // while batchers drain), hence the declaration order.
    serve::SocketServerConfig sc;
    sc.path = std::string("/tmp/") + prefix + ".sock";
    sc.max_conns = 8;
    serve::MicroBatcherConfig bc;
    bc.max_delay_us = 500;
    std::unique_ptr<serve::SocketServer> socket_server;
    runtime::WorkerGroup loop_thread;
    serve::ModelRegistry registry(bc);
    Status loaded = registry.Load(manifest.value());
    if (!loaded.ok()) {
      std::fprintf(stderr, "selftest: registry load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    serve::ModelService service(&registry);

    for (int64_t offset = 0; offset < 64; offset += 16) {
      const Tensor window_a = Slice(series_a, 1, offset, pa.lookback);
      const Tensor window_b = Slice(series_b, 1, offset, pb.lookback);
      const std::string line_a = serve::FormatTensorLine(window_a);
      const std::string line_b = serve::FormatTensorLine(window_b);
      const std::string want_a = expect(oracle_a.value().get(), line_a);
      const std::string want_b = expect(oracle_b.value().get(), line_b);
      const std::string got_a = service.HandleLine("MODEL alpha " + line_a);
      const std::string got_b = service.HandleLine("MODEL beta " + line_b);
      const std::string got_default = service.HandleLine(line_a);
      if (got_a != want_a) {
        std::fprintf(stderr, "selftest: MODEL alpha reply mismatch:\n"
                             "  got:  %s\n  want: %s\n",
                     got_a.c_str(), want_a.c_str());
        ++failures;
      }
      if (got_b != want_b) {
        std::fprintf(stderr, "selftest: MODEL beta reply mismatch\n");
        ++failures;
      }
      if (got_default != want_a) {
        std::fprintf(stderr,
                     "selftest: default route did not hit the default "
                     "model\n");
        ++failures;
      }
    }

    const std::string unknown = service.HandleLine("MODEL ghost 1,2");
    if (unknown.rfind("ERROR NotFound", 0) != 0) {
      std::fprintf(stderr, "selftest: unknown model not NotFound: %s\n",
                   unknown.c_str());
      ++failures;
    }

    // LIST: both tenants at v1, alpha the default.
    const std::string list = service.HandleLine("LIST");
    obs::JsonValue list_doc;
    if (!obs::JsonParse(list, &list_doc) || !list_doc.is_object() ||
        list_doc.Find("default") == nullptr ||
        list_doc.Find("default")->str != "alpha" ||
        list_doc.Find("models") == nullptr ||
        list_doc.Find("models")->array.size() != 2) {
      std::fprintf(stderr, "selftest: bad LIST reply: %s\n", list.c_str());
      ++failures;
    }

    // Live hot-swap: alpha moves to the retrained checkpoint; beta is
    // untouched; replies flip to the new oracle.
    const std::string reload =
        service.HandleLine("RELOAD alpha " + ckpt_a2);
    if (reload != "OK alpha v2") {
      std::fprintf(stderr, "selftest: RELOAD failed: %s\n", reload.c_str());
      ++failures;
    }
    const std::string line =
        serve::FormatTensorLine(Slice(series_a, 1, 0, pa.lookback));
    if (service.HandleLine("MODEL alpha " + line) !=
        expect(oracle_a2.value().get(), line)) {
      std::fprintf(stderr,
                   "selftest: post-RELOAD alpha reply is not v2's\n");
      ++failures;
    }
    const std::string line_b =
        serve::FormatTensorLine(Slice(series_b, 1, 0, pb.lookback));
    if (service.HandleLine("MODEL beta " + line_b) !=
        expect(oracle_b.value().get(), line_b)) {
      std::fprintf(stderr, "selftest: RELOAD of alpha disturbed beta\n");
      ++failures;
    }
    const std::string bad_reload =
        service.HandleLine("RELOAD alpha does_not_exist.msdckpt");
    if (bad_reload.rfind("ERROR", 0) != 0) {
      std::fprintf(stderr, "selftest: RELOAD of a bad checkpoint passed\n");
      ++failures;
    }

    // STATS: the per-model object reflects the traffic and the new version.
    const std::string stats = service.HandleLine("STATS");
    obs::JsonValue stats_doc;
    const obs::JsonValue* models = nullptr;
    const obs::JsonValue* alpha = nullptr;
    if (!obs::JsonParse(stats, &stats_doc) ||
        (models = stats_doc.Find("models")) == nullptr ||
        (alpha = models->Find("alpha")) == nullptr ||
        models->Find("beta") == nullptr) {
      std::fprintf(stderr, "selftest: STATS misses per-model counters: %s\n",
                   stats.c_str());
      ++failures;
    } else if (alpha->Find("version") == nullptr ||
               alpha->Find("version")->number != 2.0 ||
               alpha->Find("requests_total") == nullptr ||
               alpha->Find("requests_total")->number < 4.0) {
      std::fprintf(stderr, "selftest: STATS alpha counters wrong: %s\n",
                   stats.c_str());
      ++failures;
    }

    // One round trip over the real epoll transport.
    socket_server = std::make_unique<serve::SocketServer>(
        sc, [&service](std::string req, std::function<void(std::string)> rp) {
          service.HandleLineAsync(req, std::move(rp));
        });
    Status listening = socket_server->Listen();
    if (!listening.ok()) {
      std::fprintf(stderr, "selftest: socket listen failed: %s\n",
                   listening.ToString().c_str());
      ++failures;
    } else {
      loop_thread.Start(1, [&socket_server](int64_t) { socket_server->Run(); });
      const int fd = ConnectUnix(sc.path);
      if (fd < 0) {
        std::fprintf(stderr, "selftest: socket connect failed\n");
        ++failures;
      } else {
        if (RoundTrip(fd, "MODEL beta " + line_b) !=
            expect(oracle_b.value().get(), line_b)) {
          std::fprintf(stderr, "selftest: socket beta reply mismatch\n");
          ++failures;
        }
        const std::string socket_list = RoundTrip(fd, "LIST");
        if (socket_list.find("\"default\":\"alpha\"") == std::string::npos) {
          std::fprintf(stderr, "selftest: socket LIST mismatch: %s\n",
                       socket_list.c_str());
          ++failures;
        }
        close(fd);
      }
      socket_server->Shutdown();
      loop_thread.Join();
    }
  }

  std::remove(ckpt_a.c_str());
  std::remove((ckpt_a + ".meta").c_str());
  std::remove(ckpt_a2.c_str());
  std::remove((ckpt_a2 + ".meta").c_str());
  std::remove(ckpt_b.c_str());
  std::remove((ckpt_b + ".meta").c_str());
  std::remove(manifest_path.c_str());
  return failures;
}

// Trains a small pipeline, round-trips it through checkpoint + text
// protocol (including the STATS/TRACE admin commands), and cross-checks
// every reply against the pipeline's own Predict. Returns the process exit
// code.
int SelfTest(int argc, char** argv) {
  const Tensor series = SelfTestSeries(21);
  const ForecastPipelineConfig pc = SelfTestPipelineConfig(/*horizon=*/8);
  ForecastPipeline pipeline(pc, /*seed=*/5);
  pipeline.Fit(series);

  const std::string ckpt = "msd_serve_selftest.msdckpt";
  Status saved = pipeline.Save(ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "selftest: save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }

  serve::ForecastSessionOptions options;
  options.lookback = pc.lookback;
  options.horizon = pc.horizon;
  // Two sessions over the same checkpoint: one frozen through the plan
  // compiler (MSD_PLAN=1), one pinned to the interpreter (MSD_PLAN=0).
  // Every data reply below is answered by both and must match byte-for-byte
  // — the end-to-end spelling of the planner's bit-identity contract.
  ::setenv("MSD_PLAN", "1", 1);
  auto session = serve::CreateForecastSession(ckpt, options);
  ::setenv("MSD_PLAN", "0", 1);
  auto interp_session = serve::CreateForecastSession(ckpt, options);
  ::unsetenv("MSD_PLAN");
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".meta").c_str());
  if (!session.ok() || !interp_session.ok()) {
    std::fprintf(stderr, "selftest: session failed: %s\n",
                 (session.ok() ? interp_session.status() : session.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  if (!session.value()->planned() || interp_session.value()->planned()) {
    std::fprintf(stderr, "selftest: MSD_PLAN did not select the paths\n");
    return 1;
  }
  if (session.value()->plan_for(1) == nullptr) {
    std::fprintf(stderr, "selftest: planned session has no batch-1 plan\n");
    return 1;
  }
  // MSD_QUANT=1 flips the planned session to the int8 path; the interpreted
  // oracle has no plans, so it stays fp32 regardless. Replies then agree to
  // quantization accuracy, not byte-for-byte.
  const bool quant = session.value()->quantized();
  if (quant && session.value()->plan_for(1)->stats().num_quantized == 0) {
    std::fprintf(stderr,
                 "selftest: MSD_QUANT=1 but the batch-1 plan adopted no "
                 "int8 steps (all fell back to fp32)\n");
    return 1;
  }
  serve::MicroBatcherConfig bc;
  bc.max_delay_us = 500;
  serve::ServerLoop server(session.value().get(), bc);
  serve::MicroBatcherConfig ibc;
  ibc.max_delay_us = 500;
  serve::ServerLoop interp_server(interp_session.value().get(), ibc);

  // Sample every request so the TRACE dump below is never empty.
  obs::TraceRing::Global().SetSampleEvery(1);
  const std::string telemetry_path = FlagValue(argc, argv, "--telemetry-out");
  obs::TelemetryExporterOptions exporter_options;
  exporter_options.path = telemetry_path;
  exporter_options.interval_ms = 50;
  obs::TelemetryExporter exporter(exporter_options);
  if (!exporter.Start()) {
    std::fprintf(stderr, "selftest: cannot open %s\n", telemetry_path.c_str());
    return 1;
  }
  server.SetExporter(&exporter);
  server.Start();
  interp_server.Start();

  int failures = 0;
  for (int64_t offset = 0; offset + pc.lookback <= series.dim(1) && offset < 64;
       offset += 16) {
    const Tensor window = Slice(series, 1, offset, pc.lookback);
    const Tensor want = pipeline.Predict(window);
    const std::string line = serve::FormatTensorLine(window);
    const std::string reply = server.HandleLine(line);
    if (reply.rfind("ERROR", 0) == 0) {
      std::fprintf(stderr, "selftest: request failed: %s\n", reply.c_str());
      ++failures;
      continue;
    }
    // Planned vs interpreted: byte-identical replies in fp32 mode (identical
    // floats print identically under %.6g); within the quantization accuracy
    // contract when the planned session runs int8.
    const std::string interp_reply = interp_server.HandleLine(line);
    if (!quant && (reply.size() != interp_reply.size() ||
                   std::memcmp(reply.data(), interp_reply.data(),
                               reply.size()) != 0)) {
      std::fprintf(stderr,
                   "selftest: planned and interpreted replies differ:\n"
                   "  plan:   %s\n  interp: %s\n",
                   reply.c_str(), interp_reply.c_str());
      ++failures;
    }
    auto parsed = serve::ParseWindowLine(reply, window.dim(0), pc.horizon);
    if (!parsed.ok()) {
      std::fprintf(stderr, "selftest: unparseable reply: %s\n",
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (quant) {
      auto interp_parsed =
          serve::ParseWindowLine(interp_reply, window.dim(0), pc.horizon);
      if (!interp_parsed.ok() ||
          !AllClose(parsed.value(), interp_parsed.value(), /*atol=*/2e-2f,
                    /*rtol=*/2e-2f)) {
        std::fprintf(stderr,
                     "selftest: int8 reply outside quantization tolerance:\n"
                     "  plan:   %s\n  interp: %s\n",
                     reply.c_str(), interp_reply.c_str());
        ++failures;
      }
    }
    // %.6g text round-trip: compare with a matching tolerance, not bitwise
    // (widened under int8 to the same quantization accuracy budget).
    const float tol = quant ? 2e-2f : 1e-3f;
    if (!AllClose(parsed.value(), want, /*atol=*/tol, /*rtol=*/tol)) {
      std::fprintf(stderr, "selftest: reply diverges from pipeline Predict\n");
      ++failures;
    }
  }

  const std::string error_reply = server.HandleLine("1,2,spam");
  if (error_reply.rfind("ERROR", 0) != 0) {
    std::fprintf(stderr, "selftest: malformed request not rejected: %s\n",
                 error_reply.c_str());
    ++failures;
  }

  // STATS: one JSON object with the request counters and latency quantiles.
  const std::string stats = server.HandleLine("STATS\n");
  obs::JsonValue stats_doc;
  if (!obs::JsonParse(stats, &stats_doc) || !stats_doc.is_object() ||
      stats_doc.Find("requests_total") == nullptr ||
      stats_doc.Find("e2e_us") == nullptr) {
    std::fprintf(stderr, "selftest: bad STATS reply: %s\n", stats.c_str());
    ++failures;
  }

  // TRACE: the dump must parse and contain the three per-request phases.
  char trace_path[128];
  std::snprintf(trace_path, sizeof(trace_path),
                "msd_serve_selftest_trace_%d.json", (int)getpid());
  const std::string trace_reply =
      server.HandleLine(std::string("TRACE ") + trace_path + "\n");
  if (trace_reply.rfind("OK", 0) != 0) {
    std::fprintf(stderr, "selftest: TRACE failed: %s\n", trace_reply.c_str());
    ++failures;
  } else {
    std::string trace_json;
    if (!ReadFileToString(trace_path, &trace_json)) {
      std::fprintf(stderr, "selftest: cannot read TRACE dump\n");
      ++failures;
    }
    obs::JsonValue trace_doc;
    const obs::JsonValue* events = nullptr;
    if (!obs::JsonParse(trace_json, &trace_doc) ||
        (events = trace_doc.Find("traceEvents")) == nullptr ||
        !events->is_array() || events->array.empty()) {
      std::fprintf(stderr, "selftest: TRACE dump unparseable or empty\n");
      ++failures;
    } else {
      bool saw_queue = false, saw_assembly = false, saw_compute = false;
      for (const obs::JsonValue& event : events->array) {
        const obs::JsonValue* name = event.Find("name");
        if (name == nullptr || !name->is_string()) continue;
        saw_queue = saw_queue || name->str == "queue";
        saw_assembly = saw_assembly || name->str == "batch_assembly";
        saw_compute = saw_compute || name->str == "compute";
      }
      if (!saw_queue || !saw_assembly || !saw_compute) {
        std::fprintf(stderr,
                     "selftest: TRACE dump misses a request phase span\n");
        ++failures;
      }
    }
  }
  std::remove(trace_path);

  server.Stop();
  interp_server.Stop();

  // Phase two: the multi-tenant stack (registry, routing, hot-swap, epoll).
  failures += MultiModelSelfTest();

  exporter.Stop();
  if (!telemetry_path.empty()) {
    // At least the t=0 and flush-on-shutdown snapshots must be present.
    failures += ValidateTelemetryFile(telemetry_path, /*min_lines=*/2);
  }
  std::printf("selftest %s\n", failures == 0 ? "passed" : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disappears mid-reply must surface as EPIPE on the write,
  // not kill the server (serve/netio.h's MSG_NOSIGNAL covers socket sends;
  // this covers stdout and any straggler).
  std::signal(SIGPIPE, SIG_IGN);
  if (HasFlag(argc, argv, "--selftest")) return SelfTest(argc, argv);
  const std::string manifest_path = FlagValue(argc, argv, "--manifest");
  if (manifest_path.empty() && (argc < 2 || argv[1][0] == '-')) {
    Usage(argv[0]);
    return 2;
  }

  serve::Manifest manifest;
  if (!manifest_path.empty()) {
    std::string text;
    if (!ReadFileToString(manifest_path, &text)) {
      std::fprintf(stderr, "cannot read manifest %s\n", manifest_path.c_str());
      return 1;
    }
    auto parsed = serve::ParseManifest(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "manifest %s rejected: %s\n", manifest_path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    manifest = std::move(parsed).value();
  } else {
    // Single-checkpoint sugar: a one-entry manifest named "default".
    serve::ManifestEntry entry;
    entry.name = "default";
    entry.version = 1;
    entry.checkpoint = argv[1];
    entry.lookback = IntFlag(argc, argv, "--lookback", entry.lookback);
    entry.horizon = IntFlag(argc, argv, "--horizon", entry.horizon);
    entry.model_dim = IntFlag(argc, argv, "--model-dim", entry.model_dim);
    entry.hidden_dim = IntFlag(argc, argv, "--hidden-dim", entry.hidden_dim);
    entry.max_batch = IntFlag(argc, argv, "--max-batch", entry.max_batch);
    entry.max_inflight =
        IntFlag(argc, argv, "--max-inflight", entry.max_inflight);
    manifest.default_model = entry.name;
    manifest.entries.push_back(std::move(entry));
  }

  serve::MicroBatcherConfig bc;
  bc.max_batch = IntFlag(argc, argv, "--max-batch", 8);
  bc.max_delay_us = IntFlag(argc, argv, "--max-delay-us", 2000);
  bc.num_workers = IntFlag(argc, argv, "--workers", 1);

  // Declared before the registry: destroyed after it, so completions from
  // draining batchers can still Post safely (serve/netio.h lifecycle note).
  std::unique_ptr<serve::SocketServer> socket_server;
  serve::ModelRegistry registry(bc);
  Status loaded = registry.Load(manifest);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load models: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  for (const auto& model : registry.List()) {
    std::fprintf(stderr,
                 "loaded %s v%lld from %s: %lld channels, lookback %lld -> "
                 "horizon %lld%s\n",
                 model->name().c_str(), (long long)model->version(),
                 model->entry().checkpoint.c_str(),
                 (long long)model->session()->model_config().channels,
                 (long long)model->entry().lookback,
                 (long long)model->entry().horizon,
                 model->name() == registry.default_model() ? " (default)"
                                                           : "");
  }
  serve::ModelService service(&registry);

  const int64_t sample = IntFlag(argc, argv, "--trace-sample", 16);
  obs::TraceRing::Global().SetSampleEvery(sample);
  // The exporter always runs (the TRACE admin command needs it); without
  // --telemetry-out it only services dump requests, no snapshot file.
  obs::TelemetryExporterOptions exporter_options;
  exporter_options.path = FlagValue(argc, argv, "--telemetry-out");
  exporter_options.interval_ms =
      IntFlag(argc, argv, "--telemetry-interval-ms", 1000);
  obs::TelemetryExporter exporter(exporter_options);
  if (!exporter.Start()) {
    std::fprintf(stderr, "cannot open telemetry output %s\n",
                 exporter_options.path.c_str());
    return 1;
  }
  service.SetExporter(&exporter);

  int rc = 0;
  const std::string socket_path = FlagValue(argc, argv, "--socket");
  if (socket_path.empty()) {
    rc = ServeStdin(service);
  } else {
    serve::SocketServerConfig sc;
    sc.path = socket_path;
    sc.max_conns = IntFlag(argc, argv, "--max-conns", sc.max_conns);
    sc.backlog = IntFlag(argc, argv, "--backlog", sc.backlog);
    socket_server = std::make_unique<serve::SocketServer>(
        sc, [&service](std::string line, std::function<void(std::string)> rp) {
          service.HandleLineAsync(line, std::move(rp));
        });
    Status listening = socket_server->Listen();
    if (!listening.ok()) {
      std::fprintf(stderr, "cannot listen on %s: %s\n", socket_path.c_str(),
                   listening.ToString().c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "listening on %s (max %lld connections)\n",
                   socket_path.c_str(), (long long)sc.max_conns);
      socket_server->Run();
    }
  }
  exporter.Stop();
  return rc;
}
