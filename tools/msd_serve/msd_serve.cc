// Serving CLI (docs/SERVING.md): restores a ForecastPipeline checkpoint
// into a frozen serve::InferenceSession and answers text-protocol requests
// — one window per line, channels separated by ';', values by ','; the
// reply is the forecast in the same layout or "ERROR <code>: <message>".
//
//   msd_serve <checkpoint> [--lookback N] [--horizon N] [--model-dim N]
//             [--hidden-dim N] [--max-batch N] [--max-delay-us N]
//             [--workers N] [--socket PATH] [--telemetry-out FILE]
//             [--telemetry-interval-ms N] [--trace-sample N]
//   msd_serve --selftest [--telemetry-out FILE]
//
// By default requests are read from stdin and answered on stdout (shell
// pipelines, smoke tests). With --socket PATH the tool listens on an
// AF_UNIX stream socket instead and serves connections one line at a time.
// --selftest trains a small pipeline on synthetic data, serves it to
// itself through the full text protocol (data requests plus the STATS and
// TRACE admin commands), checks the responses against
// ForecastPipeline::Predict, answers every data request through BOTH a
// planned session (MSD_PLAN=1, docs/COMPILER.md) and an interpreted one
// (MSD_PLAN=0) and requires byte-identical replies, validates the
// telemetry JSONL when --telemetry-out is given, and exits nonzero on any
// mismatch — this is the msd_serve_selftest ctest. Under MSD_QUANT=1 the
// planned session runs int8 GEMMs (docs/PERFORMANCE.md) while the
// interpreted oracle stays fp32, so the byte-identity requirement degrades
// to the quantization accuracy contract (2% relative) and the selftest
// additionally asserts that the plan really adopted int8 steps.
//
// Telemetry: a background obs::TelemetryExporter appends a JSONL registry
// snapshot to --telemetry-out every --telemetry-interval-ms and services
// the `TRACE <path>` admin command (chrome://tracing dump of the sampled
// request ring; --trace-sample N keeps 1-in-N requests, 0 disables).
//
// All transport IO lives here, outside src/serve (the
// no-blocking-io-in-serve-hot-path lint rule keeps the engine itself
// compute-only; telemetry file writes happen on the exporter thread).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "datagen/series_builder.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/ring.h"
#include "serve/server.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace msd;

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

int64_t IntFlag(int argc, char** argv, const std::string& flag,
                int64_t fallback) {
  const std::string v = FlagValue(argc, argv, flag);
  return v.empty() ? fallback : std::atoll(v.c_str());
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <checkpoint> [--lookback N] [--horizon N]\n"
               "          [--model-dim N] [--hidden-dim N] [--max-batch N]\n"
               "          [--max-delay-us N] [--workers N] [--socket PATH]\n"
               "          [--telemetry-out FILE] [--telemetry-interval-ms N]\n"
               "          [--trace-sample N]\n"
               "       %s --selftest [--telemetry-out FILE]\n",
               argv0, argv0);
}

// Reads `path` and checks every line is a self-contained JSON snapshot with
// the schema the exporter promises ({"ts_ms":..,"seq":..,"metrics":{...}}
// with the serve counters present). Returns the number of problems found.
int ValidateTelemetryFile(const std::string& path, int64_t min_lines) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  int64_t lines = 0;
  char line[1 << 16];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lines;
    obs::JsonValue doc;
    if (!obs::JsonParse(line, &doc) || !doc.is_object()) {
      std::fprintf(stderr, "telemetry: line %lld is not valid JSON\n",
                   (long long)lines);
      ++failures;
      continue;
    }
    const obs::JsonValue* ts = doc.Find("ts_ms");
    const obs::JsonValue* seq = doc.Find("seq");
    const obs::JsonValue* metrics = doc.Find("metrics");
    if (ts == nullptr || !ts->is_number() || seq == nullptr ||
        !seq->is_number() || metrics == nullptr || !metrics->is_object()) {
      std::fprintf(stderr, "telemetry: line %lld misses ts_ms/seq/metrics\n",
                   (long long)lines);
      ++failures;
      continue;
    }
    const obs::JsonValue* counters = metrics->Find("counters");
    if (counters == nullptr ||
        counters->Find("serve/requests_total") == nullptr) {
      std::fprintf(stderr,
                   "telemetry: line %lld misses serve/requests_total\n",
                   (long long)lines);
      ++failures;
    }
  }
  std::fclose(f);
  if (lines < min_lines) {
    std::fprintf(stderr, "telemetry: %s has %lld lines, expected >= %lld\n",
                 path.c_str(), (long long)lines, (long long)min_lines);
    ++failures;
  }
  return failures;
}

// Serves stdin line-by-line; EOF terminates cleanly.
int ServeStdin(serve::ServerLoop& server) {
  std::fprintf(stderr, "ready: one request per line on stdin\n");
  char line[1 << 16];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    const std::string reply = server.HandleLine(line);
    std::printf("%s\n", reply.c_str());
    std::fflush(stdout);
  }
  return 0;
}

// Minimal AF_UNIX stream server: connections are handled one at a time,
// each line answered in order. Enough for local smoke tests and sidecars.
int ServeSocket(serve::ServerLoop& server, const std::string& path) {
  const int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 8) < 0) {
    std::perror("bind/listen");
    close(listener);
    return 1;
  }
  std::fprintf(stderr, "listening on %s\n", path.c_str());
  for (;;) {
    const int conn = accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("accept");
      break;
    }
    std::string pending;
    char buffer[4096];
    for (;;) {
      const ssize_t n = read(conn, buffer, sizeof(buffer));
      if (n <= 0) break;
      pending.append(buffer, static_cast<size_t>(n));
      size_t newline;
      while ((newline = pending.find('\n')) != std::string::npos) {
        const std::string reply =
            server.HandleLine(pending.substr(0, newline)) + "\n";
        pending.erase(0, newline + 1);
        size_t sent = 0;
        while (sent < reply.size()) {
          const ssize_t w =
              write(conn, reply.data() + sent, reply.size() - sent);
          if (w <= 0) break;
          sent += static_cast<size_t>(w);
        }
      }
    }
    close(conn);
  }
  close(listener);
  unlink(path.c_str());
  return 0;
}

// Trains a small pipeline, round-trips it through checkpoint + text
// protocol (including the STATS/TRACE admin commands), and cross-checks
// every reply against the pipeline's own Predict. Returns the process exit
// code.
int SelfTest(int argc, char** argv) {
  SeriesConfig series_config;
  series_config.name = "selftest";
  series_config.length = 400;
  series_config.seed = 21;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec channel;
    channel.level = 1.0 + c;
    channel.seasonals.push_back({24.0, 1.0, 0.4 * c, 2});
    channel.noise_sigma = 0.05;
    series_config.channels.push_back(channel);
  }
  const Tensor series = GenerateSeries(series_config);

  ForecastPipelineConfig pc;
  pc.lookback = 32;
  pc.horizon = 8;
  pc.trainer.epochs = 2;
  pc.trainer.batch_size = 16;
  pc.trainer.max_batches_per_epoch = 8;
  pc.trainer.early_stop_patience = 0;
  ForecastPipeline pipeline(pc, /*seed=*/5);
  pipeline.Fit(series);

  const std::string ckpt = "msd_serve_selftest.msdckpt";
  Status saved = pipeline.Save(ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "selftest: save failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }

  serve::ForecastSessionOptions options;
  options.lookback = pc.lookback;
  options.horizon = pc.horizon;
  // Two sessions over the same checkpoint: one frozen through the plan
  // compiler (MSD_PLAN=1), one pinned to the interpreter (MSD_PLAN=0).
  // Every data reply below is answered by both and must match byte-for-byte
  // — the end-to-end spelling of the planner's bit-identity contract.
  ::setenv("MSD_PLAN", "1", 1);
  auto session = serve::CreateForecastSession(ckpt, options);
  ::setenv("MSD_PLAN", "0", 1);
  auto interp_session = serve::CreateForecastSession(ckpt, options);
  ::unsetenv("MSD_PLAN");
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".meta").c_str());
  if (!session.ok() || !interp_session.ok()) {
    std::fprintf(stderr, "selftest: session failed: %s\n",
                 (session.ok() ? interp_session.status() : session.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  if (!session.value()->planned() || interp_session.value()->planned()) {
    std::fprintf(stderr, "selftest: MSD_PLAN did not select the paths\n");
    return 1;
  }
  if (session.value()->plan_for(1) == nullptr) {
    std::fprintf(stderr, "selftest: planned session has no batch-1 plan\n");
    return 1;
  }
  // MSD_QUANT=1 flips the planned session to the int8 path; the interpreted
  // oracle has no plans, so it stays fp32 regardless. Replies then agree to
  // quantization accuracy, not byte-for-byte.
  const bool quant = session.value()->quantized();
  if (quant && session.value()->plan_for(1)->stats().num_quantized == 0) {
    std::fprintf(stderr,
                 "selftest: MSD_QUANT=1 but the batch-1 plan adopted no "
                 "int8 steps (all fell back to fp32)\n");
    return 1;
  }
  serve::MicroBatcherConfig bc;
  bc.max_delay_us = 500;
  serve::ServerLoop server(session.value().get(), bc);
  serve::MicroBatcherConfig ibc;
  ibc.max_delay_us = 500;
  serve::ServerLoop interp_server(interp_session.value().get(), ibc);

  // Sample every request so the TRACE dump below is never empty.
  obs::TraceRing::Global().SetSampleEvery(1);
  const std::string telemetry_path = FlagValue(argc, argv, "--telemetry-out");
  obs::TelemetryExporterOptions exporter_options;
  exporter_options.path = telemetry_path;
  exporter_options.interval_ms = 50;
  obs::TelemetryExporter exporter(exporter_options);
  if (!exporter.Start()) {
    std::fprintf(stderr, "selftest: cannot open %s\n", telemetry_path.c_str());
    return 1;
  }
  server.SetExporter(&exporter);
  server.Start();
  interp_server.Start();

  int failures = 0;
  for (int64_t offset = 0; offset + pc.lookback <= series.dim(1) && offset < 64;
       offset += 16) {
    const Tensor window = Slice(series, 1, offset, pc.lookback);
    const Tensor want = pipeline.Predict(window);
    const std::string line = serve::FormatTensorLine(window);
    const std::string reply = server.HandleLine(line);
    if (reply.rfind("ERROR", 0) == 0) {
      std::fprintf(stderr, "selftest: request failed: %s\n", reply.c_str());
      ++failures;
      continue;
    }
    // Planned vs interpreted: byte-identical replies in fp32 mode (identical
    // floats print identically under %.6g); within the quantization accuracy
    // contract when the planned session runs int8.
    const std::string interp_reply = interp_server.HandleLine(line);
    if (!quant && (reply.size() != interp_reply.size() ||
                   std::memcmp(reply.data(), interp_reply.data(),
                               reply.size()) != 0)) {
      std::fprintf(stderr,
                   "selftest: planned and interpreted replies differ:\n"
                   "  plan:   %s\n  interp: %s\n",
                   reply.c_str(), interp_reply.c_str());
      ++failures;
    }
    auto parsed = serve::ParseWindowLine(reply, window.dim(0), pc.horizon);
    if (!parsed.ok()) {
      std::fprintf(stderr, "selftest: unparseable reply: %s\n",
                   parsed.status().ToString().c_str());
      ++failures;
      continue;
    }
    if (quant) {
      auto interp_parsed =
          serve::ParseWindowLine(interp_reply, window.dim(0), pc.horizon);
      if (!interp_parsed.ok() ||
          !AllClose(parsed.value(), interp_parsed.value(), /*atol=*/2e-2f,
                    /*rtol=*/2e-2f)) {
        std::fprintf(stderr,
                     "selftest: int8 reply outside quantization tolerance:\n"
                     "  plan:   %s\n  interp: %s\n",
                     reply.c_str(), interp_reply.c_str());
        ++failures;
      }
    }
    // %.6g text round-trip: compare with a matching tolerance, not bitwise
    // (widened under int8 to the same quantization accuracy budget).
    const float tol = quant ? 2e-2f : 1e-3f;
    if (!AllClose(parsed.value(), want, /*atol=*/tol, /*rtol=*/tol)) {
      std::fprintf(stderr, "selftest: reply diverges from pipeline Predict\n");
      ++failures;
    }
  }

  const std::string error_reply = server.HandleLine("1,2,spam");
  if (error_reply.rfind("ERROR", 0) != 0) {
    std::fprintf(stderr, "selftest: malformed request not rejected: %s\n",
                 error_reply.c_str());
    ++failures;
  }

  // STATS: one JSON object with the request counters and latency quantiles.
  const std::string stats = server.HandleLine("STATS\n");
  obs::JsonValue stats_doc;
  if (!obs::JsonParse(stats, &stats_doc) || !stats_doc.is_object() ||
      stats_doc.Find("requests_total") == nullptr ||
      stats_doc.Find("e2e_us") == nullptr) {
    std::fprintf(stderr, "selftest: bad STATS reply: %s\n", stats.c_str());
    ++failures;
  }

  // TRACE: the dump must parse and contain the three per-request phases.
  char trace_path[128];
  std::snprintf(trace_path, sizeof(trace_path),
                "msd_serve_selftest_trace_%d.json", (int)getpid());
  const std::string trace_reply =
      server.HandleLine(std::string("TRACE ") + trace_path + "\n");
  if (trace_reply.rfind("OK", 0) != 0) {
    std::fprintf(stderr, "selftest: TRACE failed: %s\n", trace_reply.c_str());
    ++failures;
  } else {
    std::FILE* tf = std::fopen(trace_path, "r");
    std::string trace_json;
    if (tf != nullptr) {
      char chunk[4096];
      size_t n;
      while ((n = std::fread(chunk, 1, sizeof(chunk), tf)) > 0) {
        trace_json.append(chunk, n);
      }
      std::fclose(tf);
    }
    obs::JsonValue trace_doc;
    const obs::JsonValue* events = nullptr;
    if (!obs::JsonParse(trace_json, &trace_doc) ||
        (events = trace_doc.Find("traceEvents")) == nullptr ||
        !events->is_array() || events->array.empty()) {
      std::fprintf(stderr, "selftest: TRACE dump unparseable or empty\n");
      ++failures;
    } else {
      bool saw_queue = false, saw_assembly = false, saw_compute = false;
      for (const obs::JsonValue& event : events->array) {
        const obs::JsonValue* name = event.Find("name");
        if (name == nullptr || !name->is_string()) continue;
        saw_queue = saw_queue || name->str == "queue";
        saw_assembly = saw_assembly || name->str == "batch_assembly";
        saw_compute = saw_compute || name->str == "compute";
      }
      if (!saw_queue || !saw_assembly || !saw_compute) {
        std::fprintf(stderr,
                     "selftest: TRACE dump misses a request phase span\n");
        ++failures;
      }
    }
  }
  std::remove(trace_path);

  server.Stop();
  interp_server.Stop();
  exporter.Stop();
  if (!telemetry_path.empty()) {
    // At least the t=0 and flush-on-shutdown snapshots must be present.
    failures += ValidateTelemetryFile(telemetry_path, /*min_lines=*/2);
  }
  std::printf("selftest %s\n", failures == 0 ? "passed" : "FAILED");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--selftest")) return SelfTest(argc, argv);
  if (argc < 2 || argv[1][0] == '-') {
    Usage(argv[0]);
    return 2;
  }
  const std::string ckpt = argv[1];

  serve::ForecastSessionOptions options;
  options.lookback = IntFlag(argc, argv, "--lookback", options.lookback);
  options.horizon = IntFlag(argc, argv, "--horizon", options.horizon);
  options.model_dim = IntFlag(argc, argv, "--model-dim", options.model_dim);
  options.hidden_dim = IntFlag(argc, argv, "--hidden-dim", options.hidden_dim);
  options.max_batch = IntFlag(argc, argv, "--max-batch", options.max_batch);
  auto session = serve::CreateForecastSession(ckpt, options);
  if (!session.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", ckpt.c_str(),
                 session.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %s: %lld channels, lookback %lld -> horizon %lld\n",
               ckpt.c_str(),
               (long long)session.value()->model_config().channels,
               (long long)options.lookback, (long long)options.horizon);

  serve::MicroBatcherConfig bc;
  bc.max_batch = IntFlag(argc, argv, "--max-batch", 8);
  bc.max_delay_us = IntFlag(argc, argv, "--max-delay-us", 2000);
  bc.num_workers = IntFlag(argc, argv, "--workers", 1);
  serve::ServerLoop server(session.value().get(), bc);

  const int64_t sample = IntFlag(argc, argv, "--trace-sample", 16);
  obs::TraceRing::Global().SetSampleEvery(sample);
  // The exporter always runs (the TRACE admin command needs it); without
  // --telemetry-out it only services dump requests, no snapshot file.
  obs::TelemetryExporterOptions exporter_options;
  exporter_options.path = FlagValue(argc, argv, "--telemetry-out");
  exporter_options.interval_ms =
      IntFlag(argc, argv, "--telemetry-interval-ms", 1000);
  obs::TelemetryExporter exporter(exporter_options);
  if (!exporter.Start()) {
    std::fprintf(stderr, "cannot open telemetry output %s\n",
                 exporter_options.path.c_str());
    return 1;
  }
  server.SetExporter(&exporter);
  server.Start();

  const std::string socket_path = FlagValue(argc, argv, "--socket");
  const int rc = socket_path.empty() ? ServeStdin(server)
                                     : ServeSocket(server, socket_path);
  server.Stop();
  exporter.Stop();
  return rc;
}
