// Tests for the sampled trace ring (obs/ring.h) and the background
// telemetry exporter (obs/exporter.h): seqlock integrity under concurrent
// writers, drop-oldest wraparound, chrome://tracing rendering, JSONL
// snapshot schema, flush-on-shutdown, and trace dump servicing.
#include "obs/exporter.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/ring.h"

namespace msd {
namespace obs {
namespace {

// Parallel ctest runs each test as its own process in a shared temp
// directory, so paths must be pid-unique.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "exporter_test_" +
         std::to_string(::getpid()) + "_" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceRingTest, PushAndSnapshotPreserveOrderAndFields) {
  TraceRing ring(/*capacity=*/8);
  ring.Push({1, "queue", 100, 10});
  ring.Push({1, "compute", 110, 50});
  ring.Push({2, "queue", 105, 20});
  const auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].request_id, 1);
  EXPECT_STREQ(spans[0].name, "queue");
  EXPECT_EQ(spans[0].start_us, 100);
  EXPECT_EQ(spans[0].dur_us, 10);
  EXPECT_STREQ(spans[1].name, "compute");
  EXPECT_EQ(spans[2].request_id, 2);
}

TEST(TraceRingTest, WraparoundDropsOldestKeepsNewest) {
  TraceRing ring(/*capacity=*/4);
  for (int64_t i = 0; i < 10; ++i) {
    ring.Push({i, "span", i * 100, 1});
  }
  EXPECT_EQ(ring.pushed(), 10);
  const auto spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Fixed capacity, drop-oldest: only the last 4 pushes survive, in order.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, 6 + static_cast<int64_t>(i));
  }
}

TEST(TraceRingTest, SampledIsOneInN) {
  TraceRing ring;
  ring.SetSampleEvery(4);
  EXPECT_TRUE(ring.Sampled(0));
  EXPECT_FALSE(ring.Sampled(1));
  EXPECT_FALSE(ring.Sampled(3));
  EXPECT_TRUE(ring.Sampled(8));
  ring.SetSampleEvery(1);
  EXPECT_TRUE(ring.Sampled(7));
  ring.SetSampleEvery(0);  // sampling disabled entirely
  EXPECT_FALSE(ring.Sampled(0));
  EXPECT_FALSE(ring.Sampled(16));
}

TEST(TraceRingTest, ClearEmptiesTheRing) {
  TraceRing ring(/*capacity=*/4);
  ring.Push({1, "span", 0, 1});
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  ring.Clear();
  EXPECT_EQ(ring.Snapshot().size(), 0u);
  EXPECT_EQ(ring.pushed(), 0);
}

TEST(TraceRingTest, ChromeTraceJsonParsesWithExpectedFields) {
  TraceRing ring(/*capacity=*/8);
  ring.Push({42, "queue", 1000, 250});
  ring.Push({42, "compute", 1250, 500});
  JsonValue doc;
  ASSERT_TRUE(JsonParse(ring.ChromeTraceJson(), &doc));
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  const JsonValue& first = events->array[0];
  EXPECT_EQ(first.Find("name")->str, "queue");
  EXPECT_EQ(first.Find("ph")->str, "X");
  // tid = request id groups every span of one request onto its own row.
  EXPECT_DOUBLE_EQ(first.Find("tid")->number, 42.0);
  EXPECT_DOUBLE_EQ(first.Find("ts")->number, 1000.0);
  EXPECT_DOUBLE_EQ(first.Find("dur")->number, 250.0);
}

TEST(TraceRingTest, ConcurrentPushersNeverTearRecords) {
  // Hammer a tiny ring from many writers while a reader snapshots: the
  // seqlock must never surface a record whose fields disagree (each pusher
  // writes spans where dur == request_id, so a mismatch = torn record).
  TraceRing ring(/*capacity=*/16);
  constexpr int kThreads = 4;
  constexpr int kPushes = 5000;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      for (const TraceSpan& span : ring.Snapshot()) {
        if (span.dur_us != span.request_id) torn.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (int i = 0; i < kPushes; ++i) {
        const int64_t id = t * kPushes + i;
        ring.Push({id, "span", id * 10, id});
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(ring.pushed(), int64_t{kThreads} * kPushes);
}

TEST(TelemetryExporterTest, WritesParseableSnapshotLinesAndFinalFlush) {
  const std::string path = TempPath("snapshots.jsonl");
  MetricsRegistry::Global().GetCounter("serve/requests_total");  // ensure key
  TelemetryExporterOptions options;
  options.path = path;
  options.interval_ms = 20;
  TelemetryExporter exporter(options);
  ASSERT_TRUE(exporter.Start());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  exporter.Stop();
  // t=0 line, at least one periodic tick, and the flush-on-shutdown line.
  EXPECT_GE(exporter.snapshots_written(), 3);

  std::istringstream lines(ReadWholeFile(path));
  std::string line;
  int64_t parsed = 0;
  double last_seq = -1.0;
  while (std::getline(lines, line)) {
    JsonValue doc;
    ASSERT_TRUE(JsonParse(line, &doc)) << "line " << parsed;
    ASSERT_TRUE(doc.is_object());
    ASSERT_NE(doc.Find("ts_ms"), nullptr);
    const JsonValue* seq = doc.Find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_GT(seq->number, last_seq);  // strictly increasing
    last_seq = seq->number;
    const JsonValue* metrics = doc.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->Find("counters")->Find("serve/requests_total"),
              nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, exporter.snapshots_written());
  std::remove(path.c_str());
}

TEST(TelemetryExporterTest, StartFailsOnUnwritablePath) {
  TelemetryExporterOptions options;
  options.path = "/nonexistent_dir_for_exporter_test/out.jsonl";
  TelemetryExporter exporter(options);
  EXPECT_FALSE(exporter.Start());
}

TEST(TelemetryExporterTest, EmptyPathServicesDumpsWithoutSnapshotFile) {
  TraceRing::Global().Clear();
  TraceRing::Global().Push({7, "compute", 100, 50});
  TelemetryExporter exporter(TelemetryExporterOptions{});
  ASSERT_TRUE(exporter.Start());
  const std::string dump = TempPath("dump.json");
  EXPECT_TRUE(exporter.RequestTraceDump(dump).get());
  exporter.Stop();
  EXPECT_EQ(exporter.snapshots_written(), 0);

  JsonValue doc;
  ASSERT_TRUE(JsonParse(ReadWholeFile(dump), &doc));
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const JsonValue& event : events->array) {
    found = found || (event.Find("tid") != nullptr &&
                      event.Find("tid")->number == 7.0);
  }
  EXPECT_TRUE(found);
  std::remove(dump.c_str());
}

TEST(TelemetryExporterTest, DumpAfterStopResolvesFalse) {
  TelemetryExporter exporter(TelemetryExporterOptions{});
  ASSERT_TRUE(exporter.Start());
  exporter.Stop();
  EXPECT_FALSE(exporter.RequestTraceDump(TempPath("late.json")).get());
}

}  // namespace
}  // namespace obs
}  // namespace msd
