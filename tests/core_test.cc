// Tests for the MSD-Mixer core: patching, MLP blocks, encoder/decoder,
// residual loss, and the decomposition stack invariants.
#include "core/msd_mixer.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/residual_loss.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(PatchingTest, NumPatchesCeils) {
  EXPECT_EQ(NumPatches(96, 24), 4);
  EXPECT_EQ(NumPatches(96, 5), 20);
  EXPECT_EQ(NumPatches(1, 4), 1);
}

TEST(PatchingTest, DivisibleLengthLayout) {
  Variable x(Tensor::Arange(12).Reshape({1, 2, 6}));
  Variable p = Patch(x, 3);
  EXPECT_EQ(p.shape(), (Shape{1, 2, 2, 3}));
  // First patch of channel 0 is [0, 1, 2].
  EXPECT_EQ(p.value().at({0, 0, 0, 2}), 2.0f);
  EXPECT_EQ(p.value().at({0, 0, 1, 0}), 3.0f);
  EXPECT_EQ(p.value().at({0, 1, 0, 0}), 6.0f);
}

TEST(PatchingTest, FrontPaddingWhenNotDivisible) {
  Variable x(Tensor::Ones({1, 1, 5}));
  Variable p = Patch(x, 4);
  EXPECT_EQ(p.shape(), (Shape{1, 1, 2, 4}));
  // ceil(5/4) = 2 patches; 3 zeros padded at the front.
  EXPECT_EQ(p.value().at({0, 0, 0, 0}), 0.0f);
  EXPECT_EQ(p.value().at({0, 0, 0, 2}), 0.0f);
  EXPECT_EQ(p.value().at({0, 0, 0, 3}), 1.0f);
  EXPECT_EQ(p.value().at({0, 0, 1, 0}), 1.0f);
}

class PatchRoundTrip
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(PatchRoundTrip, UnpatchInvertsPatch) {
  const auto& [length, patch_size] = GetParam();
  Rng rng(1);
  Variable x(Tensor::RandNormal({2, 3, length}, 0, 1, rng));
  Variable round = Unpatch(Patch(x, patch_size), length);
  EXPECT_TRUE(AllClose(round.value(), x.value(), 0.0f, 0.0f));
}

TEST_P(PatchRoundTrip, GradientOfRoundTripIsIdentity) {
  const auto& [length, patch_size] = GetParam();
  Rng rng(2);
  Variable x(Tensor::RandNormal({1, 2, length}, 0, 1, rng), true);
  Variable y = Unpatch(Patch(x, patch_size), length);
  SumAll(Mul(y, y)).Backward();
  EXPECT_TRUE(AllClose(x.grad(), MulScalar(x.value(), 2.0f), 1e-5f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PatchRoundTrip,
    ::testing::Values(std::make_tuple(96, 24), std::make_tuple(96, 1),
                      std::make_tuple(96, 96), std::make_tuple(10, 3),
                      std::make_tuple(7, 4), std::make_tuple(13, 5)));

TEST(MlpBlockTest, PreservesShapeAndDiffersFromInput) {
  Rng rng(3);
  MlpBlock block(8, 16, 0.0f, rng);
  Variable x(Tensor::RandNormal({2, 5, 8}, 0, 1, rng));
  Variable y = block.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_GT(MaxAbsDiff(y.value(), x.value()), 1e-4f);
}

TEST(MlpBlockTest, ResidualPathDominatesAtInit) {
  // With small random weights the block output stays close to its input
  // (residual connection), unlike a plain MLP.
  Rng rng(4);
  MlpBlock block(8, 16, 0.0f, rng);
  Variable x(Tensor::RandNormal({4, 8}, 0, 1, rng));
  Variable y = block.Forward(x);
  EXPECT_LT(MaxAbsDiff(y.value(), x.value()), 2.0f);
}

TEST(AxisMlpBlockTest, MixesOnlyAlongChosenAxis) {
  Rng rng(5);
  // Mixing along axis 1 of [B, C, L', p]: two inputs that differ only in one
  // C-slice must produce outputs identical everywhere except positions whose
  // axis-1 fiber passes through the changed slice (which is all of axis 1 at
  // the same (B, L', p) coordinates).
  AxisMlpBlock block(1, 3, 8, 0.0f, rng);
  Tensor base = Tensor::RandNormal({1, 3, 2, 2}, 0, 1, rng);
  Tensor changed = base.Clone();
  changed.set({0, 1, 0, 0}, changed.at({0, 1, 0, 0}) + 1.0f);
  Tensor ya = block.Forward(Variable(base)).value();
  Tensor yb = block.Forward(Variable(changed)).value();
  // Positions sharing (L'=0, p=0) change across all channels...
  EXPECT_GT(std::fabs(ya.at({0, 0, 0, 0}) - yb.at({0, 0, 0, 0})), 1e-6f);
  // ...but other (L', p) coordinates are untouched.
  EXPECT_EQ(ya.at({0, 0, 1, 1}), yb.at({0, 0, 1, 1}));
  EXPECT_EQ(ya.at({0, 2, 0, 1}), yb.at({0, 2, 0, 1}));
}

TEST(PatchCoderTest, EncoderDecoderShapes) {
  Rng rng(6);
  PatchCoderDims dims{/*channels=*/3, /*num_patches=*/4, /*patch_size=*/6,
                      /*model_dim=*/5, /*hidden_dim=*/8, /*drop_path=*/0.0f};
  PatchEncoder encoder(dims, rng);
  PatchDecoder decoder(dims, rng);
  Variable x(Tensor::RandNormal({2, 3, 4, 6}, 0, 1, rng));
  Variable e = encoder.Forward(x);
  EXPECT_EQ(e.shape(), (Shape{2, 3, 4, 5}));
  Variable s = decoder.Forward(e);
  EXPECT_EQ(s.shape(), (Shape{2, 3, 4, 6}));
}

TEST(PatchCoderTest, GradientsReachAllParameters) {
  Rng rng(7);
  PatchCoderDims dims{2, 3, 4, 5, 8, 0.0f};
  PatchEncoder encoder(dims, rng);
  Variable x(Tensor::RandNormal({1, 2, 3, 4}, 0, 1, rng));
  SumAll(Square(encoder.Forward(x))).Backward();
  for (const Variable& p : encoder.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

// ---- Residual Loss ------------------------------------------------------------

TEST(ResidualLossTest, ZeroResidualGivesZeroLoss) {
  Variable z(Tensor::Zeros({2, 3, 32}));
  EXPECT_NEAR(ResidualLoss(z).item(), 0.0f, 1e-6f);
}

TEST(ResidualLossTest, MagnitudeOnlyEqualsMeanSquare) {
  Rng rng(8);
  Variable z(Tensor::RandNormal({2, 3, 32}, 0, 2, rng));
  ResidualLossOptions options;
  options.include_autocorrelation = false;
  EXPECT_NEAR(ResidualLoss(z, options).item(),
              MeanAll(Square(z.value())).item(), 1e-5f);
}

TEST(ResidualLossTest, PeriodicResidualPenalizedMoreThanNoise) {
  Rng rng(9);
  const int64_t length = 64;
  Tensor sine({1, 1, length});
  for (int64_t t = 0; t < length; ++t) {
    sine.set({0, 0, t},
             std::sin(2.0f * static_cast<float>(M_PI) * t / 8.0f));
  }
  Tensor noise = Tensor::RandNormal({1, 1, length}, 0, 1, rng);
  // Normalize both to unit power so the magnitude term matches; the ACF term
  // must then separate them.
  const float sine_power = MeanAll(Square(sine)).item();
  const float noise_power = MeanAll(Square(noise)).item();
  Tensor sine_n = MulScalar(sine, 1.0f / std::sqrt(sine_power));
  Tensor noise_n = MulScalar(noise, 1.0f / std::sqrt(noise_power));
  const float loss_sine = ResidualLoss(Variable(sine_n)).item();
  const float loss_noise = ResidualLoss(Variable(noise_n)).item();
  EXPECT_GT(loss_sine, loss_noise + 0.05f);
}

TEST(ResidualLossTest, MaxLagCapsComputation) {
  Rng rng(10);
  Variable z(Tensor::RandNormal({1, 2, 48}, 0, 1, rng));
  ResidualLossOptions capped;
  capped.max_lag = 8;
  // Both are finite and of the same order; capped uses fewer lags.
  EXPECT_GE(ResidualLoss(z, capped).item(), 0.0f);
}

TEST(ResidualLossTest, GradientMatchesNumeric) {
  Rng rng(11);
  Tensor z0 = Tensor::RandNormal({1, 2, 12}, 0.5f, 1.0f, rng);
  Variable z(z0.Clone(), true);
  ResidualLossOptions options;
  options.alpha = 0.5f;  // tight band so the ACF term is active
  ResidualLoss(z, options).Backward();
  const Tensor analytic = z.grad().Clone();

  Tensor probe = z0.Clone();
  const float eps = 1e-2f;
  for (int64_t i = 0; i < probe.numel(); ++i) {
    const float saved = probe.data()[i];
    probe.data()[i] = saved + eps;
    const float up = ResidualLoss(Variable(probe), options).item();
    probe.data()[i] = saved - eps;
    const float down = ResidualLoss(Variable(probe), options).item();
    probe.data()[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                2e-3f + 3e-2f * std::fabs(numeric))
        << "element " << i;
  }
}

// ---- Full model ------------------------------------------------------------------

MsdMixerConfig SmallConfig(TaskType task) {
  MsdMixerConfig config;
  config.input_length = 24;
  config.channels = 3;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 6;
  config.hidden_dim = 12;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = 12;
  config.num_classes = 4;
  return config;
}

TEST(MsdMixerTest, ForecastOutputShape) {
  Rng rng(12);
  MsdMixer model(SmallConfig(TaskType::kForecast), rng);
  Variable x(Tensor::RandNormal({5, 3, 24}, 0, 1, rng));
  MsdMixerOutput out = model.Run(x);
  EXPECT_EQ(out.prediction.shape(), (Shape{5, 3, 12}));
  EXPECT_EQ(out.residual.shape(), (Shape{5, 3, 24}));
}

TEST(MsdMixerTest, ClassificationOutputShape) {
  Rng rng(13);
  MsdMixer model(SmallConfig(TaskType::kClassification), rng);
  Variable x(Tensor::RandNormal({5, 3, 24}, 0, 1, rng));
  EXPECT_EQ(model.Run(x).prediction.shape(), (Shape{5, 4}));
}

TEST(MsdMixerTest, ReconstructionOutputShape) {
  Rng rng(14);
  MsdMixer model(SmallConfig(TaskType::kReconstruction), rng);
  Variable x(Tensor::RandNormal({5, 3, 24}, 0, 1, rng));
  EXPECT_EQ(model.Run(x).prediction.shape(), (Shape{5, 3, 24}));
}

TEST(MsdMixerTest, DecompositionIdentityHolds) {
  // Paper Eq. 1/3: X == sum_i S_i + Z_k exactly, by construction.
  Rng rng(15);
  MsdMixer model(SmallConfig(TaskType::kForecast), rng);
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  MsdMixerOutput out = model.Run(x, /*collect_components=*/true);
  ASSERT_EQ(out.components.size(), 3u);
  Tensor sum = out.residual.value().Clone();
  for (const Variable& s : out.components) {
    sum = Add(sum, s.value());
  }
  EXPECT_TRUE(AllClose(sum, x.value(), 1e-4f, 1e-4f));
}

TEST(MsdMixerTest, DecompositionIdentityHoldsInPoolingMode) {
  Rng rng(16);
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  config.patching_mode = PatchingMode::kPoolingInterpolation;
  MsdMixer model(config, rng);
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  MsdMixerOutput out = model.Run(x, /*collect_components=*/true);
  Tensor sum = out.residual.value().Clone();
  for (const Variable& s : out.components) sum = Add(sum, s.value());
  EXPECT_TRUE(AllClose(sum, x.value(), 1e-4f, 1e-4f));
}

TEST(MsdMixerTest, GradientsReachEveryParameter) {
  Rng rng(17);
  MsdMixer model(SmallConfig(TaskType::kForecast), rng);
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  MsdMixerOutput out = model.Run(x);
  Variable loss =
      Add(MeanAll(Square(out.prediction)), ResidualLoss(out.residual));
  loss.Backward();
  int64_t with_grad = 0;
  const auto params = model.Parameters();
  for (const Variable& p : params) {
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_EQ(with_grad, static_cast<int64_t>(params.size()));
}

TEST(MsdMixerTest, UniformPatchSizesHelper) {
  const auto sizes = MsdMixerConfig::UniformPatchSizes(96, 4);
  ASSERT_EQ(sizes.size(), 4u);
  for (int64_t p : sizes) EXPECT_EQ(p, 10);  // round(sqrt(96)) = 10
}

TEST(MsdMixerTest, LayerOrderChangesModelButKeepsIdentity) {
  Rng rng(18);
  MsdMixerConfig inverted = SmallConfig(TaskType::kForecast);
  std::reverse(inverted.patch_sizes.begin(), inverted.patch_sizes.end());
  MsdMixer model(inverted, rng);
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  MsdMixerOutput out = model.Run(x, true);
  Tensor sum = out.residual.value().Clone();
  for (const Variable& s : out.components) sum = Add(sum, s.value());
  EXPECT_TRUE(AllClose(sum, x.value(), 1e-4f, 1e-4f));
}

TEST(MsdMixerTest, PatchLargerThanInputDies) {
  Rng rng(19);
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  config.patch_sizes = {48};
  EXPECT_DEATH(MsdMixer(config, rng), "");
}

TEST(MsdMixerTest, EvalModeIsDeterministicDespiteDropPath) {
  Rng rng(20);
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  config.drop_path = 0.5f;
  MsdMixer model(config, rng);
  model.SetTraining(false);
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  Tensor a = model.Run(x).prediction.value();
  Tensor b = model.Run(x).prediction.value();
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

TEST(MsdMixerTest, InstanceNormMakesForecastShiftEquivariant) {
  // With use_instance_norm, adding a constant to the input shifts the
  // forecast by the same constant.
  Rng rng(33);
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  config.use_instance_norm = true;
  MsdMixer model(config, rng);
  model.SetTraining(false);
  NoGradGuard guard;
  Variable x(Tensor::RandNormal({2, 3, 24}, 0, 1, rng));
  Tensor base = model.Run(x).prediction.value();
  Variable shifted(AddScalar(x.value(), 50.0f));
  Tensor moved = model.Run(shifted).prediction.value();
  EXPECT_TRUE(AllClose(AddScalar(base, 50.0f), moved, 5e-2f, 1e-3f));
}

TEST(MsdMixerTest, TrainingStepReducesLoss) {
  // One-batch overfit sanity check: loss after a few Adam steps is well
  // below the initial loss.
  Rng rng(21);
  MsdMixer model(SmallConfig(TaskType::kForecast), rng);
  Tensor x = Tensor::RandNormal({4, 3, 24}, 0, 1, rng);
  Tensor y = Tensor::RandNormal({4, 3, 12}, 0, 1, rng);
  std::vector<Variable> params = model.Parameters();
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  // Local Adam-like update via optimizer would add a dependency; plain SGD
  // on normalized gradients suffices for a descent check.
  for (int step = 0; step < 30; ++step) {
    for (Variable& p : params) p.ZeroGrad();
    MsdMixerOutput out = model.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual), 0.1f));
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.Backward();
    for (Variable& p : params) {
      if (!p.has_grad()) continue;
      float* w = p.mutable_value().data();
      const float* g = p.grad().data();
      for (int64_t j = 0; j < p.numel(); ++j) w[j] -= 0.01f * g[j];
    }
  }
  EXPECT_LT(last_loss, first_loss * 0.8f);
}

}  // namespace
}  // namespace msd
