// Integration tests: end-to-end miniature runs of all five task pipelines,
// exercising trainer + datasets + models + metrics together.
#include "tasks/experiments.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/dlinear.h"
#include "baselines/mlp_autoencoder.h"
#include "datagen/anomaly_gen.h"
#include "datagen/long_term.h"
#include "datagen/series_builder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// A small but structured series for fast experiments.
Tensor TinySeries(int64_t channels = 3, int64_t length = 800,
                  uint64_t seed = 11) {
  SeriesConfig config;
  config.length = length;
  config.seed = seed;
  config.channel_mix = 0.3;
  for (int64_t c = 0; c < channels; ++c) {
    ChannelSpec spec;
    spec.seasonals = {{24.0, 1.0, 0.3 * c, 2}};
    spec.ar_coeff = 0.5;
    spec.noise_sigma = 0.2;
    config.channels.push_back(spec);
  }
  return GenerateSeries(config);
}

MsdMixerConfig TinyMixerConfig(TaskType task, int64_t channels,
                               int64_t input_length, int64_t horizon,
                               int64_t classes = 2) {
  MsdMixerConfig config;
  config.input_length = input_length;
  config.channels = channels;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = horizon;
  config.num_classes = classes;
  return config;
}

TrainerConfig FastTrainer(int64_t epochs = 2) {
  TrainerConfig trainer;
  trainer.epochs = epochs;
  trainer.batch_size = 16;
  trainer.lr = 2e-3f;
  trainer.max_batches_per_epoch = 12;
  return trainer;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Rng rng(1);
  Tensor series = TinySeries();
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 3, 48, 24);
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, /*lambda=*/0.3f);

  SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
  StandardScaler scaler;
  scaler.Fit(splits.train);
  ForecastWindowDataset train_data(scaler.Transform(splits.train), 48, 24, 2);
  TrainerConfig trainer = FastTrainer(4);
  TrainStats stats = Train(model, train_data, trainer, ForecastMseTaskLoss);
  ASSERT_EQ(stats.epoch_losses.size(), 4u);
  EXPECT_LT(stats.final_loss(), stats.epoch_losses.front());
}

TEST(TrainerTest, TelemetrySinkPopulatesStats) {
  Rng rng(10);
  Tensor series = TinySeries();
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 3, 48, 24);
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.3f);

  SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
  StandardScaler scaler;
  scaler.Fit(splits.train);
  ForecastWindowDataset train_data(scaler.Transform(splits.train), 48, 24, 2);
  TrainerConfig trainer = FastTrainer(3);
  trainer.telemetry = TelemetrySink::kStats;
  TrainStats stats = Train(model, train_data, trainer, ForecastMseTaskLoss);

  const size_t steps = 3u * 12u;  // epochs * max_batches_per_epoch
  ASSERT_EQ(stats.batch_losses.size(), steps);
  ASSERT_EQ(stats.grad_norms.size(), steps);
  ASSERT_EQ(stats.epoch_lrs.size(), 3u);
  ASSERT_EQ(stats.epoch_seconds.size(), 3u);
  EXPECT_GT(stats.total_wall_seconds, 0.0);
  double epoch_sum = 0.0;
  for (double s : stats.epoch_seconds) {
    EXPECT_GT(s, 0.0);
    epoch_sum += s;
  }
  EXPECT_LE(epoch_sum, stats.total_wall_seconds * 1.01);
  for (float g : stats.grad_norms) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_GT(g, 0.0f);  // pre-clip norm of a real step is never zero
  }
  EXPECT_GT(stats.mean_grad_norm(), 0.0f);
  // Cosine schedule decays the effective LR across epochs.
  EXPECT_FLOAT_EQ(stats.epoch_lrs.front(), trainer.lr);
  EXPECT_LT(stats.epoch_lrs.back(), stats.epoch_lrs.front());
}

TEST(TrainerTest, RegistrySinkPublishesMetrics) {
  obs::MetricsRegistry::Global().ResetAll();
  Rng rng(11);
  Tensor series = TinySeries();
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 3, 48, 24);
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.3f);

  SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
  StandardScaler scaler;
  scaler.Fit(splits.train);
  ForecastWindowDataset train_data(scaler.Transform(splits.train), 48, 24, 2);
  TrainerConfig trainer = FastTrainer(2);
  trainer.telemetry = TelemetrySink::kRegistry;
  Train(model, train_data, trainer, ForecastMseTaskLoss);

  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("train/epochs").value(), 2);
  EXPECT_EQ(registry.GetCounter("train/batches").value(), 2 * 12);
  EXPECT_GT(registry.GetGauge("train/grad_norm").value(), 0.0);
  EXPECT_GT(registry.GetGauge("train/lr").value(), 0.0);
  // The instrumented substrate saw real work during training.
  EXPECT_GT(registry.GetCounter("tensor/matmul_calls").value(), 0);
  EXPECT_GT(registry.GetCounter("autograd/backward_calls").value(), 0);
}

// Telemetry must be purely observational: identical training trajectories
// with every sink + the profiler on vs everything off.
TEST(TrainerTest, TelemetryDoesNotPerturbTraining) {
  auto run = [](bool telemetry_on) {
    Rng rng(12);  // same model init both times
    Tensor series = TinySeries();
    MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 3, 48, 24);
    MsdMixer mixer(mc, rng);
    MsdMixerTaskModel model(&mixer, 0.3f);
    SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
    StandardScaler scaler;
    scaler.Fit(splits.train);
    ForecastWindowDataset train_data(scaler.Transform(splits.train), 48, 24,
                                     2);
    TrainerConfig trainer = FastTrainer(3);
    trainer.telemetry =
        telemetry_on ? TelemetrySink::kRegistry : TelemetrySink::kNone;
    obs::Profiler::Global().SetEnabled(telemetry_on);
    TrainStats stats = Train(model, train_data, trainer, ForecastMseTaskLoss);
    obs::Profiler::Global().SetEnabled(true);
    return stats.epoch_losses;
  };
  const std::vector<float> with_telemetry = run(true);
  const std::vector<float> without_telemetry = run(false);
  ASSERT_EQ(with_telemetry.size(), without_telemetry.size());
  for (size_t i = 0; i < with_telemetry.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(with_telemetry[i], without_telemetry[i]) << "epoch " << i;
  }
}

TEST(ForecastExperimentTest, MsdMixerBeatsUntrainedSelf) {
  Rng rng(2);
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 3, 48, 24);
  ForecastExperimentConfig config;
  config.lookback = 48;
  config.horizon = 24;
  config.train_stride = 2;
  config.eval_stride = 4;
  config.trainer = FastTrainer(3);

  Tensor series = TinySeries();

  // Untrained scores (epochs minimized to the constant model bias).
  MsdMixer untrained(mc, rng);
  MsdMixerTaskModel untrained_model(&untrained, 0.3f);
  SeriesSplits splits = SplitSeries(series, config.split);
  StandardScaler scaler;
  scaler.Fit(splits.train);
  ForecastWindowDataset test_data(scaler.Transform(splits.test), 48, 24, 4);
  RegressionScores before = EvaluateForecast(untrained_model, test_data);

  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.3f);
  RegressionScores after = RunForecastExperiment(model, series, config);
  EXPECT_LT(after.mse, before.mse);
  // The series is strongly periodic; a trained model should do clearly
  // better than predicting zero (MSE ~1 in scaled space).
  EXPECT_LT(after.mse, 0.9);
}

TEST(ForecastExperimentTest, WorksForBaselineModule) {
  Rng rng(3);
  DLinear dlinear(48, 24, rng);
  ModuleTaskModel model(&dlinear);
  ForecastExperimentConfig config;
  config.lookback = 48;
  config.horizon = 24;
  config.train_stride = 2;
  config.eval_stride = 4;
  config.trainer = FastTrainer(3);
  RegressionScores scores = RunForecastExperiment(model, TinySeries(), config);
  EXPECT_LT(scores.mse, 1.2);
  EXPECT_GT(scores.mse, 0.0);
}

TEST(ImputationExperimentTest, TrainedMixerImputesBetterThanZeroFill) {
  Rng rng(4);
  MsdMixerConfig mc =
      TinyMixerConfig(TaskType::kReconstruction, 3, 48, /*horizon unused*/ 1);
  MsdMixer mixer(mc, rng);
  // Imputation: magnitude-only residual loss (paper §IV-D).
  ResidualLossOptions residual;
  residual.include_autocorrelation = false;
  MsdMixerTaskModel model(&mixer, 0.3f, residual);

  ImputationExperimentConfig config;
  config.window = 48;
  config.missing_ratio = 0.25;
  config.train_stride = 3;
  config.eval_stride = 6;
  config.trainer = FastTrainer(3);
  RegressionScores scores =
      RunImputationExperiment(model, TinySeries(), config);
  // Zero-filling missing points of a standardized series scores MSE ~1.
  EXPECT_LT(scores.mse, 0.8);
}

TEST(ShortTermExperimentTest, MixerProducesFiniteCompetitiveOwa) {
  M4SubsetSpec spec{"TestQuarterly", 8, 4, 48, 24};
  auto series = GenerateM4Like(spec, 21);
  ShortTermExperimentConfig config;
  config.trainer = FastTrainer(12);
  config.trainer.lr = 5e-3f;
  config.trainer.max_batches_per_epoch = 0;

  const int64_t lookback = ShortTermLookback(spec, config);
  Rng rng(5);
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kForecast, 1, lookback, 8);
  mc.patch_sizes = {4, 2, 1};
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.3f);
  M4Scores scores = RunShortTermExperiment(model, series, spec, config);
  EXPECT_GT(scores.smape, 0.0);
  EXPECT_LT(scores.smape, 200.0);
  EXPECT_LT(scores.owa, 3.0);  // sane range; beating Naive2 needs more epochs
}

TEST(AnomalyExperimentTest, DetectsInjectedAnomalies) {
  AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 6);
  Rng rng(6);
  MlpAutoencoder ae(data.train.dim(0), kAnomalyWindow, rng, 24);
  ModuleTaskModel model(&ae);
  AnomalyExperimentConfig config;
  config.trainer = FastTrainer(2);
  config.trainer.max_batches_per_epoch = 10;
  AnomalyEvalResult result =
      RunAnomalyExperiment(model, data.train, data.test, data.labels, config);
  // Point-adjusted F1 on obvious injected anomalies should beat chance.
  EXPECT_GT(result.scores.f1, 0.3);
  EXPECT_GT(result.threshold, 0.0f);
}

TEST(ClassificationExperimentTest, LearnsAboveChance) {
  ClassificationSubset subset{"toy", 3, 48, 3, 90, 45, 0.5};
  ClassificationData data = GenerateClassificationData(subset, 7);
  Rng rng(7);
  MsdMixerConfig mc = TinyMixerConfig(TaskType::kClassification, 3, 48, 1, 3);
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.1f);
  ClassificationExperimentConfig config;
  config.trainer = FastTrainer(6);
  config.trainer.max_batches_per_epoch = 0;
  const double acc = RunClassificationExperiment(model, data, config);
  EXPECT_GT(acc, 0.5);  // chance = 1/3
}

TEST(ClassificationSamplesTest, LabelsEncodedAsFloatTensors) {
  std::vector<Tensor> xs = {Tensor::Ones({2, 4})};
  std::vector<int64_t> ys = {3};
  auto samples = MakeClassificationSamples(xs, ys);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].target.at({0}), 3.0f);
}

TEST(ReconstructionScoresTest, HigherOnCorruptedSegment) {
  // Train an AE on clean data; a corrupted copy must score higher where
  // corrupted.
  Rng rng(8);
  Tensor series = TinySeries(2, 600, 9);
  StandardScaler scaler;
  scaler.Fit(series);
  Tensor scaled = scaler.Transform(series);
  MlpAutoencoder ae(2, 50, rng, 16);
  ModuleTaskModel model(&ae);
  ReconstructionWindowDataset train_data(scaled, 50);
  TrainerConfig trainer = FastTrainer(3);
  Train(model, train_data, trainer, ReconstructionMseTaskLoss);

  Tensor corrupted = scaled.Clone();
  for (int64_t t = 100; t < 150; ++t) {
    corrupted.set({0, t}, corrupted.at({0, t}) + 4.0f);
  }
  std::vector<float> clean_scores = ReconstructionScores(model, scaled, 50);
  std::vector<float> bad_scores = ReconstructionScores(model, corrupted, 50);
  double clean_sum = 0.0;
  double bad_sum = 0.0;
  for (int64_t t = 100; t < 150; ++t) {
    clean_sum += clean_scores[static_cast<size_t>(t)];
    bad_sum += bad_scores[static_cast<size_t>(t)];
  }
  EXPECT_GT(bad_sum, clean_sum * 2.0);
}

}  // namespace
}  // namespace msd
