// Session-freeze inference compiler tests (docs/COMPILER.md): bit-identity
// of planned execution against the interpreted oracle across task heads,
// thread counts, and batch sizes; arena lifetime edge cases (in-place
// aliasing, zero-numel intermediates, max_batch=1 degenerate plans); region
// disjointness under overlapping lifetimes; and the zero-pool-traffic
// steady-state contract.
#include "serve/plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"
#include "serve/session.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// This suite asserts fp32 bit-exactness (planned == interpreted). Pin the
// int8 quantization pass off so a harness-level MSD_QUANT=1 sweep (the
// check.sh quantized ctest leg) cannot turn these fixtures into quantized
// sessions; the quantized contracts live in tests/quant_plan_test.cc.
const bool kQuantPinnedOff = [] {
  ::setenv("MSD_QUANT", "0", /*overwrite=*/1);
  return true;
}();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "plan_test_" + std::to_string(::getpid()) +
         "_" + name;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Pins MSD_PLAN for the lifetime of a scope; Create() reads it once.
class ScopedPlanEnv {
 public:
  explicit ScopedPlanEnv(const char* value) {
    const char* old = std::getenv("MSD_PLAN");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("MSD_PLAN", value, /*overwrite=*/1);
  }
  ~ScopedPlanEnv() {
    if (had_old_) {
      ::setenv("MSD_PLAN", old_.c_str(), 1);
    } else {
      ::unsetenv("MSD_PLAN");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

MsdMixerConfig SmallConfig(TaskType task) {
  MsdMixerConfig config;
  config.input_length = 32;
  config.channels = 2;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = 8;
  config.num_classes = 3;
  return config;
}

StandardScaler FittedScaler(int64_t channels) {
  Rng rng(99);
  StandardScaler scaler;
  scaler.Fit(Tensor::RandNormal({channels, 64}, 1.5f, 2.0f, rng));
  return scaler;
}

std::unique_ptr<serve::InferenceSession> MakeSession(
    TaskType task, bool planned, int64_t max_batch = 4,
    bool with_scaler = true, const std::string& tag = "s") {
  ScopedPlanEnv env(planned ? "1" : "0");
  MsdMixerConfig config = SmallConfig(task);
  Rng rng(17);
  MsdMixer mixer(config, rng);
  const std::string path = TempPath("plan_" + tag + ".msdckpt");
  EXPECT_TRUE(SaveCheckpoint(mixer, path).ok());
  serve::InferenceSessionConfig sc;
  sc.model = config;
  if (with_scaler) sc.scaler = FittedScaler(config.channels);
  sc.max_batch = max_batch;
  auto session = serve::InferenceSession::Create(sc, path);
  std::remove(path.c_str());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

Tensor RandomBatch(uint64_t seed, int64_t b) {
  Rng rng(seed);
  return Tensor::RandNormal({b, 2, 32}, 0.0f, 1.0f, rng);
}

// ---- Bit-identity sweep -----------------------------------------------------

// The hard contract: for every task head, the planned forward is memcmp-
// identical to the interpreted one, at every supported batch size and for
// MSD_THREADS 1 and 4.
TEST(PlanBitIdentityTest, MatchesInterpreterAcrossTasksThreadsAndBatches) {
  const TaskType tasks[] = {TaskType::kForecast, TaskType::kClassification,
                            TaskType::kReconstruction};
  for (TaskType task : tasks) {
    SCOPED_TRACE(static_cast<int>(task));
    auto planned = MakeSession(task, /*planned=*/true, /*max_batch=*/4);
    auto interp = MakeSession(task, /*planned=*/false, /*max_batch=*/4);
    ASSERT_TRUE(planned->planned());
    ASSERT_FALSE(interp->planned());
    for (int64_t b : {int64_t{1}, int64_t{4}}) {
      ASSERT_NE(planned->plan_for(b), nullptr) << "batch " << b;
      const Tensor batch = RandomBatch(7 + static_cast<uint64_t>(b), b);
      Tensor out1, out4;
      {
        runtime::ScopedThreads threads(1);
        auto p = planned->PredictBatch(batch);
        auto i = interp->PredictBatch(batch);
        ASSERT_TRUE(p.ok() && i.ok());
        EXPECT_TRUE(BitIdentical(p.value(), i.value()))
            << "planned != interpreted, batch " << b << ", 1 thread";
        out1 = p.value();
      }
      {
        runtime::ScopedThreads threads(4);
        auto p = planned->PredictBatch(batch);
        auto i = interp->PredictBatch(batch);
        ASSERT_TRUE(p.ok() && i.ok());
        EXPECT_TRUE(BitIdentical(p.value(), i.value()))
            << "planned != interpreted, batch " << b << ", 4 threads";
        out4 = p.value();
      }
      EXPECT_TRUE(BitIdentical(out1, out4))
          << "planned output depends on thread count, batch " << b;
    }
  }
}

// Without a fitted scaler the planned chain is the bare module graph; the
// contract must hold there too (no normalize/denormalize fusion sites).
TEST(PlanBitIdentityTest, MatchesInterpreterWithoutScaler) {
  auto planned = MakeSession(TaskType::kForecast, /*planned=*/true, 2,
                             /*with_scaler=*/false, "noscale_p");
  auto interp = MakeSession(TaskType::kForecast, /*planned=*/false, 2,
                            /*with_scaler=*/false, "noscale_i");
  const Tensor batch = RandomBatch(21, 2);
  auto p = planned->PredictBatch(batch);
  auto i = interp->PredictBatch(batch);
  ASSERT_TRUE(p.ok() && i.ok());
  EXPECT_TRUE(BitIdentical(p.value(), i.value()));
}

// ---- Plan structure ---------------------------------------------------------

TEST(PlanStructureTest, FusionAndInPlaceReuseFire) {
  // input_length 30 with patch sizes {8, 4, 1}: two scales pad (30 -> 32),
  // so Unpatch emits a Slice and the residual subtract has SliceSub sites
  // in addition to the scaler's SubDiv / MulAdd pair.
  ScopedPlanEnv env("1");
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  config.input_length = 30;
  Rng rng(17);
  MsdMixer mixer(config, rng);
  const std::string path = TempPath("plan_stats.msdckpt");
  ASSERT_TRUE(SaveCheckpoint(mixer, path).ok());
  serve::InferenceSessionConfig sc;
  sc.model = config;
  sc.scaler = FittedScaler(config.channels);
  sc.max_batch = 2;
  auto session_or = serve::InferenceSession::Create(sc, path);
  std::remove(path.c_str());
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  auto session = std::move(session_or).value();
  const serve::CompiledPlan* plan = session->plan_for(2);
  ASSERT_NE(plan, nullptr);
  const serve::PlanStats& stats = plan->stats();
  // Scaler normalize (SubDiv) + forecast denormalize (MulAdd) + the two
  // padded scales' residual subtracts (SliceSub).
  EXPECT_GE(stats.num_fused, 4) << plan->DebugString();
  EXPECT_EQ(stats.num_ops, stats.traced_ops - stats.num_fused);
  EXPECT_GT(stats.num_inplace, 0) << plan->DebugString();
  // Every Linear weight is a frozen rank-2 constant: all of them prepack.
  EXPECT_GT(stats.num_prepacked, 0) << plan->DebugString();
  // Aliasing must actually shrink the region count below one-per-op.
  EXPECT_LT(stats.num_regions, stats.num_ops);
  EXPECT_GT(stats.arena_bytes, 0);
}

TEST(PlanStructureTest, RegionsWithOverlappingLifetimesAreDisjoint) {
  auto session = MakeSession(TaskType::kForecast, /*planned=*/true, 3,
                             /*with_scaler=*/true, "regions");
  for (int64_t b = 1; b <= 3; ++b) {
    const serve::CompiledPlan* plan = session->plan_for(b);
    ASSERT_NE(plan, nullptr);
    const std::vector<serve::RegionInfo> regions = plan->Regions();
    ASSERT_FALSE(regions.empty());
    int64_t arena_end = 0;
    for (const serve::RegionInfo& r : regions) {
      EXPECT_GE(r.offset, 0);
      EXPECT_EQ(r.offset % arena::kAlignment, 0);
      arena_end = std::max(arena_end, r.offset + r.bytes);
    }
    EXPECT_EQ(arena_end, plan->stats().arena_bytes);
    for (size_t i = 0; i < regions.size(); ++i) {
      for (size_t j = i + 1; j < regions.size(); ++j) {
        const serve::RegionInfo& a = regions[i];
        const serve::RegionInfo& c = regions[j];
        if (a.bytes == 0 || c.bytes == 0) continue;
        const bool lifetimes_overlap =
            a.first_def <= c.last_use && c.first_def <= a.last_use;
        if (!lifetimes_overlap) continue;
        const bool bytes_overlap =
            a.offset < c.offset + c.bytes && c.offset < a.offset + a.bytes;
        EXPECT_FALSE(bytes_overlap)
            << "regions " << i << "/" << j << " share bytes while both live";
      }
    }
  }
}

// ---- Steady-state allocation contract ---------------------------------------

TEST(PlanSteadyStateTest, PlannedPathDoesNotTouchTheTensorPool) {
  auto session = MakeSession(TaskType::kForecast, /*planned=*/true, 2,
                             /*with_scaler=*/true, "pool");
  const Tensor batch = RandomBatch(31, 2);
  // One call beyond warmup settles the result-block free list.
  ASSERT_TRUE(session->PredictBatch(batch).ok());
  obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter("tensor/pool_hits");
  obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("tensor/pool_misses");
  obs::Counter& plan_ops =
      obs::MetricsRegistry::Global().GetCounter("serve/plan_ops");
  const int64_t hits0 = hits.value();
  const int64_t misses0 = misses.value();
  const int64_t ops0 = plan_ops.value();
  constexpr int kCalls = 16;
  for (int i = 0; i < kCalls; ++i) {
    auto out = session->PredictBatch(batch);
    ASSERT_TRUE(out.ok());
  }
  EXPECT_EQ(hits.value(), hits0) << "planned path drew from the tensor pool";
  EXPECT_EQ(misses.value(), misses0) << "planned path allocated via the pool";
  EXPECT_EQ(plan_ops.value() - ops0,
            kCalls * session->plan_for(2)->stats().num_ops);
}

// ---- Compile() edge cases ---------------------------------------------------

// A diamond of elementwise ops: the planner's in-place pass must not alias
// the output of Add(t, t) over t while the later Sub still reads t.
TEST(PlanCompileTest, AliasedResidualReuseStaysCorrect) {
  Rng rng(5);
  const Tensor x = Tensor::RandNormal({3, 8}, 0.0f, 1.0f, rng);
  auto fn = [](const Tensor& in) {
    Tensor t = Relu(Add(in, in));
    Tensor u = Mul(t, t);      // may alias onto t only if t were dead — it
    Tensor v = Sub(u, t);      // is not: this op still reads it
    return Add(v, in);         // and `in` must never be overwritten
  };
  std::string why_not;
  auto plan = serve::CompiledPlan::Compile(fn, x, &why_not);
  ASSERT_NE(plan, nullptr) << why_not;
  const Tensor expected = fn(x);
  for (int round = 0; round < 3; ++round) {
    Tensor got = plan->Execute(x);
    EXPECT_TRUE(BitIdentical(got, expected)) << "round " << round;
  }
  EXPECT_GT(plan->stats().num_inplace, 0) << plan->DebugString();
}

// Zero-numel intermediates get zero-byte regions and must flow through
// slicing, padding, and elementwise kernels without faulting.
TEST(PlanCompileTest, ZeroLengthIntermediates) {
  Rng rng(6);
  const Tensor x = Tensor::RandNormal({2, 6}, 0.0f, 1.0f, rng);
  auto fn = [](const Tensor& in) {
    Tensor empty = Slice(in, 1, 0, 0);            // [2, 0]
    Tensor doubled = Add(empty, empty);           // zero-numel elementwise
    Tensor refilled = Pad(doubled, 1, 0, 6, 2.5f);  // [2, 6] of pad value
    return Mul(refilled, in);
  };
  std::string why_not;
  auto plan = serve::CompiledPlan::Compile(fn, x, &why_not);
  ASSERT_NE(plan, nullptr) << why_not;
  EXPECT_TRUE(BitIdentical(plan->Execute(x), fn(x)));
  bool saw_zero_byte_region = false;
  for (const serve::RegionInfo& r : plan->Regions()) {
    if (r.bytes == 0) saw_zero_byte_region = true;
  }
  EXPECT_TRUE(saw_zero_byte_region);
}

// Unsupported ops must poison the trace: Compile refuses with a reason
// instead of freezing a wrong schedule.
TEST(PlanCompileTest, UnsupportedOpRefusesWithReason) {
  Rng rng(7);
  const Tensor x = Tensor::RandNormal({2, 4}, 0.0f, 1.0f, rng);
  auto fn = [](const Tensor& in) { return Maximum(in, Neg(in)); };
  std::string why_not;
  auto plan = serve::CompiledPlan::Compile(fn, x, &why_not);
  EXPECT_EQ(plan, nullptr);
  EXPECT_NE(why_not.find("Maximum"), std::string::npos) << why_not;
}

// max_batch = 1: the degenerate single-plan session still plans, still
// matches the interpreter, and rejects anything larger.
TEST(PlanCompileTest, MaxBatchOneDegeneratePlan) {
  auto planned = MakeSession(TaskType::kReconstruction, /*planned=*/true,
                             /*max_batch=*/1, /*with_scaler=*/true, "b1p");
  auto interp = MakeSession(TaskType::kReconstruction, /*planned=*/false,
                            /*max_batch=*/1, /*with_scaler=*/true, "b1i");
  ASSERT_NE(planned->plan_for(1), nullptr);
  EXPECT_EQ(planned->plan_for(2), nullptr);
  const Tensor batch = RandomBatch(41, 1);
  auto p = planned->PredictBatch(batch);
  auto i = interp->PredictBatch(batch);
  ASSERT_TRUE(p.ok() && i.ok());
  EXPECT_TRUE(BitIdentical(p.value(), i.value()));
  EXPECT_FALSE(planned->PredictBatch(RandomBatch(42, 2)).ok());
}

// Replies are exported out of the arena: they must stay stable after later
// Execute calls overwrite the arena, and may outlive the plan itself.
TEST(PlanCompileTest, RepliesSurviveArenaReuseAndPlanDestruction) {
  Rng rng(8);
  const Tensor x = Tensor::RandNormal({2, 5}, 0.0f, 1.0f, rng);
  const Tensor y = Tensor::RandNormal({2, 5}, 3.0f, 1.0f, rng);
  auto fn = [](const Tensor& in) { return Sqrt(Abs(Mul(in, in))); };
  auto plan = serve::CompiledPlan::Compile(fn, x);
  ASSERT_NE(plan, nullptr);
  Tensor first = plan->Execute(x);
  const Tensor snapshot = first.Clone();
  Tensor second = plan->Execute(y);
  EXPECT_TRUE(BitIdentical(first, snapshot)) << "arena reuse clobbered reply";
  plan.reset();
  EXPECT_TRUE(BitIdentical(first, snapshot)) << "reply died with the plan";
  EXPECT_TRUE(BitIdentical(second, fn(y)));
}

}  // namespace
}  // namespace msd
