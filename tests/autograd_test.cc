// Unit tests for the autograd engine, including numerical gradient checks
// (central finite differences) for every differentiable op.
#include "autograd/ops.h"

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// Checks analytic gradients of `f` (a scalar-valued function of one leaf)
// against central finite differences at `x0`.
void ExpectGradMatchesNumeric(
    const std::function<Variable(const Variable&)>& f, const Tensor& x0,
    float eps = 1e-2f, float atol = 2e-3f, float rtol = 3e-2f) {
  Variable x(x0.Clone(), /*requires_grad=*/true);
  Variable y = f(x);
  ASSERT_EQ(y.numel(), 1);
  y.Backward();
  ASSERT_TRUE(x.has_grad());
  const Tensor& analytic = x.grad();

  Tensor probe = x0.Clone();
  Variable xp(probe, /*requires_grad=*/false);
  for (int64_t i = 0; i < probe.numel(); ++i) {
    const float saved = probe.data()[i];
    probe.data()[i] = saved + eps;
    const float up = f(xp).item();
    probe.data()[i] = saved - eps;
    const float down = f(xp).item();
    probe.data()[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float a = analytic.data()[i];
    EXPECT_NEAR(a, numeric, atol + rtol * std::fabs(numeric))
        << "element " << i;
  }
}

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::Ones({2, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  EXPECT_EQ(v.shape(), (Shape{2, 2}));
}

TEST(VariableTest, BackwardSimpleChain) {
  // y = sum((2x + 1)^2), dy/dx = 4(2x + 1)
  Variable x(Tensor({3}, {0.0f, 1.0f, -1.0f}), true);
  Variable y = SumAll(Square(AddScalar(MulScalar(x, 2.0f), 1.0f)));
  y.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor({3}, {4.0f, 12.0f, -4.0f})));
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable x(Tensor::Ones({3}), true);
  Variable y = MulScalar(x, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(VariableTest, GradientsAccumulateAcrossBackwardCalls) {
  Variable x(Tensor::Ones({2}), true);
  for (int pass = 0; pass < 2; ++pass) {
    Variable y = SumAll(MulScalar(x, 3.0f));
    y.Backward();
  }
  EXPECT_TRUE(AllClose(x.grad(), Tensor::Full({2}, 6.0f)));
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, DiamondDependencyCountsBothPaths) {
  // y = x*x + x, dy/dx = 2x + 1
  Variable x(Tensor({2}, {3.0f, -2.0f}), true);
  Variable y = SumAll(Add(Mul(x, x), x));
  y.Backward();
  EXPECT_TRUE(AllClose(x.grad(), Tensor({2}, {7.0f, -3.0f})));
}

TEST(VariableTest, DetachStopsGradient) {
  Variable x(Tensor::Ones({2}), true);
  Variable d = x.Detach();
  Variable y = SumAll(Mul(d, d));
  EXPECT_FALSE(y.requires_grad());
  y.Backward();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, NoGradGuardDisablesRecording) {
  Variable x(Tensor::Ones({2}), true);
  {
    NoGradGuard guard;
    Variable y = SumAll(Mul(x, x));
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
}

TEST(VariableTest, NoGradGuardNests) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(NoGradGuard::GradEnabled());
  }
  EXPECT_FALSE(NoGradGuard::GradEnabled());
}

TEST(VariableTest, BroadcastGradReducesToLeafShape) {
  Variable a(Tensor::Ones({2, 3}), true);
  Variable b(Tensor::Ones({3}), true);
  Variable y = SumAll(Add(a, b));
  y.Backward();
  EXPECT_EQ(a.grad().shape(), (Shape{2, 3}));
  EXPECT_EQ(b.grad().shape(), (Shape{3}));
  EXPECT_TRUE(AllClose(b.grad(), Tensor::Full({3}, 2.0f)));
}

TEST(VariableTest, ConstantLeafGetsNoGrad) {
  Variable a(Tensor::Ones({2}), true);
  Variable c(Tensor::Ones({2}), false);
  Variable y = SumAll(Mul(a, c));
  y.Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_FALSE(c.has_grad());
}

// ---- Numerical gradient checks, one per op ---------------------------------

Tensor TestInput(Shape shape, uint64_t seed, float mean = 0.0f,
                 float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::RandNormal(std::move(shape), mean, stddev, rng);
}

TEST(GradCheck, AddBroadcast) {
  Tensor other = TestInput({4}, 1);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(Add(x, Variable(other))));
      },
      TestInput({3, 4}, 2));
}

TEST(GradCheck, SubBothSides) {
  Tensor other = TestInput({3, 4}, 3);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(Sub(Variable(other), x)));
      },
      TestInput({3, 4}, 4));
}

TEST(GradCheck, MulBroadcast) {
  Tensor other = TestInput({3, 1}, 5);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) { return SumAll(Mul(x, Variable(other))); },
      TestInput({3, 4}, 6));
}

TEST(GradCheck, DivNumeratorAndDenominator) {
  Tensor denom = TestInput({2, 3}, 7, 3.0f, 0.2f);  // away from zero
  ExpectGradMatchesNumeric(
      [&](const Variable& x) { return SumAll(Div(x, Variable(denom))); },
      TestInput({2, 3}, 8));
  Tensor numer = TestInput({2, 3}, 9);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) { return SumAll(Div(Variable(numer), x)); },
      TestInput({2, 3}, 10, 3.0f, 0.2f));
}

TEST(GradCheck, MatMul2DBothSides) {
  Tensor rhs = TestInput({4, 2}, 11);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(MatMul(x, Variable(rhs))));
      },
      TestInput({3, 4}, 12));
  Tensor lhs = TestInput({3, 4}, 13);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(MatMul(Variable(lhs), x)));
      },
      TestInput({4, 2}, 14));
}

TEST(GradCheck, MatMulBatchedBroadcastRhs) {
  // x: [2,3,4] times shared rhs [4,2]; rhs gradient must sum over batch.
  Tensor x0 = TestInput({2, 3, 4}, 15);
  ExpectGradMatchesNumeric(
      [&](const Variable& w) {
        return SumAll(Square(MatMul(Variable(x0), w)));
      },
      TestInput({4, 2}, 16));
}

TEST(GradCheck, UnaryElementwise) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Exp(x)); }, TestInput({6}, 17));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Log(x)); },
      TestInput({6}, 18, 3.0f, 0.3f));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Sqrt(x)); },
      TestInput({6}, 19, 4.0f, 0.3f));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Square(x)); }, TestInput({6}, 20));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Tanh(x)); }, TestInput({6}, 21));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Sigmoid(x)); },
      TestInput({6}, 22));
}

TEST(GradCheck, AbsAwayFromKink) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Abs(x)); },
      TestInput({6}, 23, 2.0f, 0.3f));
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor x0({4}, {1.5f, -1.5f, 2.0f, -0.7f});
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Square(Relu(x))); }, x0);
}

TEST(GradCheck, Gelu) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return SumAll(Gelu(x)); }, TestInput({8}, 24));
}

TEST(GradCheck, SumOverDims) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Sum(x, {1}, /*keepdim=*/false)));
      },
      TestInput({3, 4}, 25));
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Sum(x, {0, 2}, /*keepdim=*/true)));
      },
      TestInput({2, 3, 4}, 26));
}

TEST(GradCheck, MeanOverDims) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Mean(x, {-1}, /*keepdim=*/false)));
      },
      TestInput({3, 5}, 27));
  ExpectGradMatchesNumeric(
      [](const Variable& x) { return Square(MeanAll(x)); },
      TestInput({3, 5}, 28));
}

TEST(GradCheck, MovementOps) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Reshape(x, {6, 2})));
      },
      TestInput({3, 4}, 29));
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Permute(x, {2, 0, 1})));
      },
      TestInput({2, 3, 4}, 30));
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Transpose(x, -1, -2)));
      },
      TestInput({3, 4}, 31));
}

TEST(GradCheck, SliceAndPad) {
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Slice(x, 1, 1, 2)));
      },
      TestInput({3, 5}, 32));
  ExpectGradMatchesNumeric(
      [](const Variable& x) {
        return SumAll(Square(Pad(x, 1, 2, 1, 0.5f)));
      },
      TestInput({3, 5}, 33));
}

TEST(GradCheck, Concat) {
  Tensor other = TestInput({3, 2}, 34);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(Concat({x, Variable(other)}, 1)));
      },
      TestInput({3, 4}, 35));
}

TEST(GradCheck, ConcatGradSplitsAcrossAllParts) {
  Variable a(TestInput({2, 2}, 36), true);
  Variable b(TestInput({2, 3}, 37), true);
  Variable y = SumAll(Square(Concat({a, b}, 1)));
  y.Backward();
  EXPECT_TRUE(AllClose(a.grad(), MulScalar(a.value(), 2.0f)));
  EXPECT_TRUE(AllClose(b.grad(), MulScalar(b.value(), 2.0f)));
}

TEST(GradCheck, Softmax) {
  Tensor target = TestInput({2, 5}, 38);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Square(Sub(Softmax(x, 1), Variable(target))));
      },
      TestInput({2, 5}, 39));
}

TEST(GradCheck, LogSoftmax) {
  Tensor weights = TestInput({2, 5}, 40);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        return SumAll(Mul(LogSoftmax(x, -1), Variable(weights)));
      },
      TestInput({2, 5}, 41));
}

TEST(GradCheck, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x0 = TestInput({3, 7}, 42);
  Variable x(x0, false);
  EXPECT_TRUE(AllClose(LogSoftmax(x, 1).value(), Log(Softmax(x0, 1)), 1e-5f,
                       1e-4f));
}

TEST(GradCheck, DeepCompositeExpression) {
  // A small MLP-like composite touching many ops at once.
  Tensor w1 = TestInput({5, 8}, 43, 0.0f, 0.5f);
  Tensor w2 = TestInput({8, 3}, 44, 0.0f, 0.5f);
  ExpectGradMatchesNumeric(
      [&](const Variable& x) {
        Variable h = Gelu(MatMul(x, Variable(w1)));
        Variable o = MatMul(h, Variable(w2));
        return MeanAll(Square(o));
      },
      TestInput({4, 5}, 45));
}

TEST(GradCheck, ParameterGradientThroughComposite) {
  // Gradient w.r.t. a weight used at two places in the graph.
  Tensor x0 = TestInput({4, 5}, 46);
  ExpectGradMatchesNumeric(
      [&](const Variable& w) {
        Variable x(x0);
        Variable h = MatMul(x, w);          // [4, 5] x [5, 5]
        Variable o = MatMul(h, w);          // reuse of w
        return MeanAll(Square(o));
      },
      TestInput({5, 5}, 47, 0.0f, 0.4f));
}

}  // namespace
}  // namespace msd
