// Regression tests for the MSD_DEBUG_CHECKS invariant layer (common/debug.h,
// docs/ANALYSIS.md): each tape-lint diagnostic is deliberately triggered and
// its message asserted, the fatal data guards are exercised as death tests,
// and a healthy training loop is shown to stay diagnostic-free. Tests that
// need the checks compiled in GTEST_SKIP when the build has them OFF, so the
// same binary is meaningful in every leg of tools/check.sh.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/debug.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/tensor.h"

namespace msd {
namespace {

Tensor RandTensor(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandUniform(std::move(shape), -1.0f, 1.0f, rng);
}

bool AnyContains(const std::vector<std::string>& messages,
                 const std::string& needle) {
  for (const std::string& m : messages) {
    if (m.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---- Helpers available regardless of the build flag ------------------------

TEST(DebugHelpers, FirstNonFinite) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float all_good[] = {0.0f, -1.5f, 3.0f};
  EXPECT_EQ(debug::FirstNonFinite(all_good, 3), -1);
  const float has_inf[] = {0.0f, inf, 3.0f};
  EXPECT_EQ(debug::FirstNonFinite(has_inf, 3), 1);
  const float has_nan[] = {nan, 1.0f};
  EXPECT_EQ(debug::FirstNonFinite(has_nan, 2), 0);
  EXPECT_EQ(debug::FirstNonFinite(nullptr, 0), -1);
}

TEST(DebugHelpers, RangesOverlap) {
  char buffer[16];
  EXPECT_TRUE(debug::RangesOverlap(buffer, 8, buffer + 4, 8));
  EXPECT_TRUE(debug::RangesOverlap(buffer, 16, buffer + 4, 2));
  EXPECT_FALSE(debug::RangesOverlap(buffer, 4, buffer + 4, 4));
  EXPECT_FALSE(debug::RangesOverlap(buffer, 0, buffer, 16));
  EXPECT_FALSE(debug::RangesOverlap(buffer, 16, buffer, 0));
}

TEST(DebugHelpers, DiagnosticSinkRecordsAndDrains) {
  debug::TakeTapeDiagnostics();
  debug::EmitTapeDiagnostic("first");
  debug::EmitTapeDiagnostic("second");
  EXPECT_EQ(debug::TapeDiagnosticCount(), 2);
  const std::vector<std::string> drained = debug::TakeTapeDiagnostics();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], "first");
  EXPECT_EQ(drained[1], "second");
  EXPECT_EQ(debug::TapeDiagnosticCount(), 0);
}

TEST(DebugHelpers, DcheckCompiledOutWhenDisabled) {
  if (debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "debug checks are ON; MSD_DCHECK is live in this build";
  }
  // These would abort / fail if evaluated; when the flag is OFF they must
  // compile to dead code.
  MSD_DCHECK(false) << "never evaluated";
  MSD_DCHECK_EQ(1, 2) << "never evaluated";
  MSD_DEBUG_ONLY(FAIL() << "never run");
  SUCCEED();
}

// ---- Tape-lint diagnostics (need the checks compiled in) -------------------

TEST(TapeLint, DoubleBackwardReportsConsumedTape) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  debug::TakeTapeDiagnostics();
  Variable x(RandTensor({3}, 42), /*requires_grad=*/true);
  Variable loss = SumAll(Mul(x, x));
  loss.Backward();
  EXPECT_FALSE(
      AnyContains(debug::TakeTapeDiagnostics(), "already-consumed"))
      << "first Backward() must not be flagged";
  loss.Backward();
  EXPECT_TRUE(
      AnyContains(debug::TakeTapeDiagnostics(), "already-consumed tape"));
}

TEST(TapeLint, DroppedLeafReportedOnce) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  debug::TakeTapeDiagnostics();
  const Variable c(RandTensor({3}, 7));
  Variable a(RandTensor({3}, 8), /*requires_grad=*/true);
  Variable b(RandTensor({3}, 9), /*requires_grad=*/true);
  // b is consumed by a recorded op, but Detach() severs it from the loss.
  Variable orphaned = Mul(b, c);
  Variable loss = SumAll(Mul(Add(a, orphaned.Detach()), c));
  loss.Backward();
  std::vector<std::string> diagnostics = debug::TakeTapeDiagnostics();
  EXPECT_TRUE(AnyContains(diagnostics, "dropped from the graph"));
  EXPECT_EQ(diagnostics.size(), 1u) << "a trained fine; only b is dropped";
  EXPECT_TRUE(a.has_grad());
  EXPECT_FALSE(b.has_grad());

  // A second sweep must not re-report the same drop.
  Variable loss2 = SumAll(Mul(a, c));
  loss2.Backward();
  EXPECT_FALSE(
      AnyContains(debug::TakeTapeDiagnostics(), "dropped from the graph"));
}

TEST(TapeLint, BackwardUnderNoGradGuardReportsLeak) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  debug::TakeTapeDiagnostics();
  Variable x(RandTensor({3}, 17), /*requires_grad=*/true);
  Variable loss = SumAll(Mul(x, x));  // recorded before the guard
  {
    NoGradGuard guard;
    loss.Backward();
  }
  EXPECT_TRUE(AnyContains(debug::TakeTapeDiagnostics(),
                          "gradient recording is disabled"));
}

TEST(TapeLint, HealthyTrainingEmitsNoDiagnostics) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  debug::TakeTapeDiagnostics();
  Rng rng(2024);
  Linear model(4, 1, rng);
  const Variable input(RandTensor({8, 4}, 2025));
  const Variable target(RandTensor({8, 1}, 2026));
  for (int step = 0; step < 3; ++step) {
    Variable loss = MseLoss(model.Forward(input), target);
    loss.Backward();
    for (Variable& p : model.Parameters()) {
      ASSERT_TRUE(p.has_grad());
      float* v = p.mutable_value().data();
      const float* g = p.grad().data();
      for (int64_t i = 0; i < p.numel(); ++i) v[i] -= 0.05f * g[i];
      p.ZeroGrad();
    }
  }
  EXPECT_EQ(debug::TapeDiagnosticCount(), 0);
}

TEST(TapeLint, EvalUnderNoGradGuardIsClean) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  debug::TakeTapeDiagnostics();
  Rng rng(3030);
  Linear model(4, 2, rng);
  {
    NoGradGuard guard;
    const Variable out = model.Forward(Variable(RandTensor({5, 4}, 3031)));
    EXPECT_EQ(out.dim(1), 2);
  }
  // Consuming parameters under the guard records nothing, so nothing may be
  // flagged as dropped by a later healthy sweep.
  Variable loss = MseLoss(model.Forward(Variable(RandTensor({5, 4}, 3032))),
                          Variable(RandTensor({5, 2}, 3033)));
  loss.Backward();
  EXPECT_EQ(debug::TapeDiagnosticCount(), 0);
}

// ---- Fatal data guards (death tests) ---------------------------------------

using DebugChecksDeathTest = ::testing::Test;

TEST(DebugChecksDeathTest, NonFiniteOpOutputAborts) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  const Variable negative(Tensor({2}, {-1.0f, 1.0f}));
  EXPECT_DEATH(Log(negative), "non-finite value in op output");
}

TEST(DebugChecksDeathTest, NonFiniteGradientAborts) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  // sqrt is finite at 0 but its derivative is not: the forward value passes
  // the output guard and the backward sweep must trip the gradient guard.
  Variable x(Tensor({1}, {0.0f}), /*requires_grad=*/true);
  Variable loss = SumAll(Sqrt(x));
  EXPECT_DEATH(loss.Backward(), "non-finite gradient");
}

TEST(DebugChecksDeathTest, CopyFromAliasAborts) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has MSD_DEBUG_CHECKS=OFF";
  }
  Tensor t = RandTensor({2, 3}, 55);
  const Tensor reshaped = t.Reshape({3, 2});  // shares storage
  EXPECT_DEATH(t.CopyFrom(reshaped), "aliases destination");
}

}  // namespace
}  // namespace msd
