// Tests for evaluation metrics, including the M4 pipeline (SMAPE/MASE/OWA),
// point-adjusted F1, and autocorrelation utilities.
#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(RegressionMetricsTest, KnownValues) {
  Tensor pred({3}, {1, 2, 3});
  Tensor target({3}, {1, 4, 0});
  EXPECT_NEAR(MseMetric(pred, target), (0.0 + 4.0 + 9.0) / 3.0, 1e-6);
  EXPECT_NEAR(MaeMetric(pred, target), (0.0 + 2.0 + 3.0) / 3.0, 1e-6);
}

TEST(RegressionMetricsTest, MaskedVariantsIgnoreUnmasked) {
  Tensor pred({4}, {1, 2, 3, 4});
  Tensor target({4}, {0, 0, 0, 0});
  Tensor mask({4}, {0, 1, 0, 1});
  EXPECT_NEAR(MaskedMseMetric(pred, target, mask), (4.0 + 16.0) / 2.0, 1e-6);
  EXPECT_NEAR(MaskedMaeMetric(pred, target, mask), (2.0 + 4.0) / 2.0, 1e-6);
}

TEST(SmapeTest, PerfectForecastIsZero) {
  EXPECT_NEAR(Smape({1, 2, 3}, {1, 2, 3}), 0.0, 1e-9);
}

TEST(SmapeTest, KnownValue) {
  // |10-8|/(10+8) = 1/9; SMAPE = 200/1 * (1/9) = 22.22...
  EXPECT_NEAR(Smape({8}, {10}), 200.0 / 9.0, 1e-6);
}

TEST(SmapeTest, BoundedBy200) {
  EXPECT_NEAR(Smape({0.0001f}, {100}), 200.0 * (100.0 - 0.0001) / 100.0001,
              1e-3);
}

TEST(MaseTest, NaiveForecastScoresOne) {
  // For a random walk, the naive forecast error equals the in-sample naive
  // error scale in expectation; construct an exact case.
  std::vector<float> insample = {0, 1, 2, 3, 4, 5};  // |diff| = 1 everywhere
  std::vector<float> actual = {7.0f};
  std::vector<float> forecast = {5.0f};  // error 2, scale 1 -> MASE 2
  EXPECT_NEAR(Mase(forecast, actual, insample, 1), 2.0, 1e-6);
}

TEST(MaseTest, SeasonalScaleUsesLagM) {
  // Period-2 alternation: seasonal diffs are zero except tiny epsilon floor.
  std::vector<float> insample = {1, 5, 1, 5, 1, 5};
  // lag-2 diffs all zero -> scale floored; MASE should be very large.
  EXPECT_GT(Mase({3.0f}, {5.0f}, insample, 2), 1e6);
  // lag-1 diffs = 4 -> scale 4.
  EXPECT_NEAR(Mase({3.0f}, {5.0f}, insample, 1), 2.0 / 4.0, 1e-6);
}

TEST(Naive2Test, NonSeasonalRepeatsLastValue) {
  std::vector<float> f = Naive2Forecast({1, 2, 3, 4}, 3, 1);
  EXPECT_EQ(f, std::vector<float>({4, 4, 4}));
}

TEST(Naive2Test, SeasonalReproducesPattern) {
  // Strict period-4 multiplicative pattern around level 10.
  std::vector<float> history;
  const float pattern[4] = {8, 12, 10, 10};
  for (int rep = 0; rep < 6; ++rep) {
    for (float p : pattern) history.push_back(p);
  }
  std::vector<float> f = Naive2Forecast(history, 4, 4);
  for (int h = 0; h < 4; ++h) {
    EXPECT_NEAR(f[static_cast<size_t>(h)],
                pattern[(history.size() + static_cast<size_t>(h)) % 4], 0.3f);
  }
}

TEST(EvaluateM4Test, Naive2ForecastGetsOwaOne) {
  // Feeding Naive2's own forecasts must give OWA == 1 by construction.
  Rng rng(3);
  std::vector<std::vector<float>> histories;
  std::vector<std::vector<float>> actuals;
  std::vector<std::vector<float>> forecasts;
  for (int s = 0; s < 10; ++s) {
    std::vector<float> h;
    for (int t = 0; t < 40; ++t) {
      h.push_back(20.0f + 3.0f * std::sin(t * 0.7f) + rng.Gaussian(0, 0.5f));
    }
    std::vector<float> a;
    for (int t = 0; t < 6; ++t) a.push_back(20.0f + rng.Gaussian(0, 0.5f));
    forecasts.push_back(Naive2Forecast(h, 6, 4));
    histories.push_back(std::move(h));
    actuals.push_back(std::move(a));
  }
  M4Scores scores = EvaluateM4(forecasts, actuals, histories, 4);
  EXPECT_NEAR(scores.owa, 1.0, 1e-9);
}

TEST(EvaluateM4Test, PerfectForecastBeatsNaive) {
  std::vector<std::vector<float>> histories = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<float>> actuals = {{9, 10}};
  std::vector<std::vector<float>> perfect = actuals;
  M4Scores scores = EvaluateM4(perfect, actuals, histories, 1);
  EXPECT_NEAR(scores.smape, 0.0, 1e-9);
  EXPECT_NEAR(scores.owa, 0.0, 1e-9);
}

TEST(PointAdjustTest, SegmentFullyCreditedOnAnyHit) {
  std::vector<int> labels = {0, 1, 1, 1, 0, 1, 1, 0};
  std::vector<int> preds = {0, 0, 1, 0, 0, 0, 0, 0};
  std::vector<int> adjusted = PointAdjust(preds, labels);
  EXPECT_EQ(adjusted, std::vector<int>({0, 1, 1, 1, 0, 0, 0, 0}));
}

TEST(PointAdjustTest, FalsePositivesUntouched) {
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<int> preds = {1, 0, 0, 0};
  std::vector<int> adjusted = PointAdjust(preds, labels);
  EXPECT_EQ(adjusted, std::vector<int>({1, 0, 0, 0}));
}

TEST(PrecisionRecallF1Test, KnownValues) {
  std::vector<int> labels = {1, 1, 0, 0, 1, 0};
  std::vector<int> preds = {1, 0, 1, 0, 1, 0};
  DetectionScores s = PrecisionRecallF1(preds, labels);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.f1, 2.0 / 3.0, 1e-9);
}

TEST(PrecisionRecallF1Test, DegenerateCases) {
  DetectionScores s = PrecisionRecallF1({0, 0}, {0, 1});
  EXPECT_EQ(s.precision, 0.0);
  EXPECT_EQ(s.f1, 0.0);
}

TEST(ThresholdForRatioTest, SelectsUpperQuantile) {
  std::vector<float> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(static_cast<float>(i));
  const float thr = ThresholdForRatio(scores, 0.10);
  // ~10% of scores exceed the threshold.
  int above = 0;
  for (int i = 0; i < 100; ++i) {
    if (static_cast<float>(i) > thr) ++above;
  }
  EXPECT_GE(above, 8);
  EXPECT_LE(above, 12);
}

TEST(AccuracyTest, KnownValue) {
  EXPECT_NEAR(Accuracy({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75, 1e-9);
}

TEST(MeanRanksTest, OrdersAndTies) {
  // Benchmarks x methods, higher better.
  std::vector<std::vector<double>> scores = {
      {0.9, 0.8, 0.7},
      {0.5, 0.6, 0.5},
  };
  std::vector<double> ranks = MeanRanks(scores);
  EXPECT_NEAR(ranks[0], (1.0 + 2.5) / 2.0, 1e-9);
  EXPECT_NEAR(ranks[1], (2.0 + 1.0) / 2.0, 1e-9);
  EXPECT_NEAR(ranks[2], (3.0 + 2.5) / 2.0, 1e-9);
}

TEST(AcfTest, WhiteNoiseStaysInBand) {
  Rng rng(11);
  Tensor noise = Tensor::RandNormal({3, 400}, 0, 1, rng);
  Tensor acf = AutocorrelationMatrix(noise);
  // Look only at short lags (long-lag estimates have few samples).
  Tensor short_lags = Slice(acf, 1, 0, 50);
  const double frac = WhiteNoiseBandFraction(short_lags, 400, 2.0);
  EXPECT_GT(frac, 0.85);
}

TEST(AcfTest, SineHasPeriodicPeaks) {
  Tensor series({1, 200});
  for (int64_t t = 0; t < 200; ++t) {
    series.set({0, t}, std::sin(2.0f * static_cast<float>(M_PI) * t / 20.0f));
  }
  Tensor acf = AutocorrelationMatrix(series);
  EXPECT_GT(acf.at({0, 19}), 0.8f);   // lag 20
  EXPECT_LT(acf.at({0, 9}), -0.8f);   // lag 10: anti-phase
}

TEST(AcfTest, Lag1OfConstantSlopeIsHigh) {
  Tensor series({1, 100});
  for (int64_t t = 0; t < 100; ++t) {
    series.set({0, t}, static_cast<float>(t));
  }
  Tensor acf = AutocorrelationMatrix(series);
  EXPECT_GT(acf.at({0, 0}), 0.9f);
}

TEST(AcfTest, MatchesPaperEquation5OnTinyExample) {
  // Hand-computed ACF for z = [1, 2, 3, 4], mean 2.5.
  // denom = 2.25+0.25+0.25+2.25 = 5. lag1: (−0.5)(−1.5)+(0.5)(−0.5)+(1.5)(0.5)
  // = 0.75+(−0.25)+0.75 = 1.25 -> 0.25. lag2: (0.5)(−1.5)+(1.5)(−0.5) = −1.5
  // -> −0.3. lag3: (1.5)(−1.5) = −2.25 -> −0.45.
  Tensor series({1, 4}, {1, 2, 3, 4});
  Tensor acf = AutocorrelationMatrix(series);
  EXPECT_NEAR(acf.at({0, 0}), 0.25f, 1e-6f);
  EXPECT_NEAR(acf.at({0, 1}), -0.3f, 1e-6f);
  EXPECT_NEAR(acf.at({0, 2}), -0.45f, 1e-6f);
}

}  // namespace
}  // namespace msd
