// Unit and property tests for the tensor library.
#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(TensorTest, DefaultConstructedIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosHasCorrectShapeAndContents) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.at({i, j}), 0.0f);
    }
  }
}

TEST(TensorTest, NegativeAxisAccess) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({2, 2}, 3.5f);
  EXPECT_EQ(t.at({1, 1}), 3.5f);
  Tensor s = Tensor::Scalar(-2.0f);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.item(), -2.0f);
}

TEST(TensorTest, ArangeContents) {
  Tensor t = Tensor::Arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at({i}), static_cast<float>(i));
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({3});
  Tensor alias = a;
  Tensor deep = a.Clone();
  a.data()[0] = 7.0f;
  EXPECT_EQ(alias.at({0}), 7.0f);
  EXPECT_EQ(deep.at({0}), 0.0f);
}

TEST(TensorTest, ReshapeSharesStorageAndInfersDim) {
  Tensor a = Tensor::Arange(12);
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.dim(1), 4);
  b.data()[0] = 99.0f;
  EXPECT_EQ(a.at({0}), 99.0f);
}

TEST(TensorTest, ReshapeBadCountDies) {
  Tensor a = Tensor::Arange(12);
  EXPECT_DEATH(a.Reshape({5, 3}), "changes element count");
}

TEST(TensorTest, SetAndAtRoundTrip) {
  Tensor a = Tensor::Zeros({2, 2});
  a.set({0, 1}, 5.0f);
  EXPECT_EQ(a.at({0, 1}), 5.0f);
  EXPECT_EQ(a.at({1, 0}), 0.0f);
}

TEST(TensorTest, RandomFactoriesDeterministic) {
  Rng rng1(42), rng2(42);
  Tensor a = Tensor::RandNormal({4, 4}, 0.0f, 1.0f, rng1);
  Tensor b = Tensor::RandNormal({4, 4}, 0.0f, 1.0f, rng2);
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

TEST(TensorTest, RandUniformWithinRange) {
  Rng rng(7);
  Tensor a = Tensor::RandUniform({100}, -2.0f, 3.0f, rng);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a.data()[i], -2.0f);
    EXPECT_LT(a.data()[i], 3.0f);
  }
}

// ---- Elementwise & broadcasting -------------------------------------------

TEST(TensorOpsTest, AddSameShape) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 1}), 44.0f);
}

TEST(TensorOpsTest, BroadcastRowVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(TensorOpsTest, BroadcastColumnVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({2, 1}, {100, 200});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 2}), 103.0f);
  EXPECT_EQ(c.at({1, 0}), 204.0f);
}

TEST(TensorOpsTest, BroadcastScalarTensor) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor c = Mul(a, Tensor::Scalar(2.0f));
  EXPECT_EQ(c.at({1, 1}), 8.0f);
}

TEST(TensorOpsTest, BroadcastBothSides) {
  Tensor a({2, 1}, {1, 2});
  Tensor b({1, 3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.at({1, 2}), 32.0f);
}

TEST(TensorOpsTest, IncompatibleBroadcastDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(Add(a, b), "not broadcastable");
}

TEST(TensorOpsTest, SubMulDiv) {
  Tensor a({3}, {6, 8, 10});
  Tensor b({3}, {2, 4, 5});
  EXPECT_TRUE(AllClose(Sub(a, b), Tensor({3}, {4, 4, 5})));
  EXPECT_TRUE(AllClose(Mul(a, b), Tensor({3}, {12, 32, 50})));
  EXPECT_TRUE(AllClose(Div(a, b), Tensor({3}, {3, 2, 2})));
}

TEST(TensorOpsTest, MaximumMinimumGreater) {
  Tensor a({3}, {1, 5, 3});
  Tensor b({3}, {2, 4, 3});
  EXPECT_TRUE(AllClose(Maximum(a, b), Tensor({3}, {2, 5, 3})));
  EXPECT_TRUE(AllClose(Minimum(a, b), Tensor({3}, {1, 4, 3})));
  EXPECT_TRUE(AllClose(Greater(a, b), Tensor({3}, {0, 1, 0})));
  EXPECT_TRUE(AllClose(GreaterEqual(a, b), Tensor({3}, {0, 1, 1})));
}

TEST(TensorOpsTest, UnaryOps) {
  Tensor a({4}, {-1.0f, 0.0f, 1.0f, 2.0f});
  EXPECT_TRUE(AllClose(Neg(a), Tensor({4}, {1, 0, -1, -2})));
  EXPECT_TRUE(AllClose(Abs(a), Tensor({4}, {1, 0, 1, 2})));
  EXPECT_TRUE(AllClose(Square(a), Tensor({4}, {1, 0, 1, 4})));
  EXPECT_TRUE(AllClose(Relu(a), Tensor({4}, {0, 0, 1, 2})));
  EXPECT_NEAR(Exp(a).at({3}), std::exp(2.0f), 1e-5f);
  EXPECT_NEAR(Sqrt(Tensor({1}, {9.0f})).at({0}), 3.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(Tensor({1}, {0.0f})).at({0}), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(Tensor({1}, {0.0f})).at({0}), 0.0f, 1e-6f);
}

TEST(TensorOpsTest, GeluKnownValues) {
  // GELU(0) = 0, GELU(x) -> x for large x, GELU(-x) small.
  Tensor x({3}, {0.0f, 10.0f, -10.0f});
  Tensor y = Gelu(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at({1}), 10.0f, 1e-4f);
  EXPECT_NEAR(y.at({2}), 0.0f, 1e-4f);
  // GELU(1) ~ 0.841345 with exact erf formulation.
  EXPECT_NEAR(Gelu(Tensor({1}, {1.0f})).at({0}), 0.841345f, 1e-5f);
}

TEST(TensorOpsTest, ClampBounds) {
  Tensor a({4}, {-5, 0, 5, 10});
  EXPECT_TRUE(AllClose(Clamp(a, -1.0f, 6.0f), Tensor({4}, {-1, 0, 5, 6})));
}

// ---- MatMul -----------------------------------------------------------------

TEST(TensorOpsTest, MatMul2D) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(TensorOpsTest, MatMulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::RandNormal({5, 5}, 0, 1, rng);
  Tensor eye = Tensor::Zeros({5, 5});
  for (int64_t i = 0; i < 5; ++i) eye.set({i, i}, 1.0f);
  EXPECT_TRUE(AllClose(MatMul(a, eye), a));
  EXPECT_TRUE(AllClose(MatMul(eye, a), a));
}

TEST(TensorOpsTest, MatMulBatched) {
  // Two independent 2x2 systems in one batch.
  Tensor a({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(c.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(c.at({0, 1, 1}), 4.0f);
  EXPECT_EQ(c.at({1, 0, 0}), 10.0f);
  EXPECT_EQ(c.at({1, 1, 1}), 16.0f);
}

TEST(TensorOpsTest, MatMulBroadcastBatch) {
  // [2,2,3] x [3,2] broadcasts rhs across the batch.
  Rng rng(11);
  Tensor a = Tensor::RandNormal({2, 2, 3}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({3, 2}, 0, 1, rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  // Check batch 1 equals the standalone 2D product.
  Tensor a1 = Slice(a, 0, 1, 1).Reshape({2, 3});
  EXPECT_TRUE(AllClose(Slice(c, 0, 1, 1).Reshape({2, 2}), MatMul(a1, b)));
}

TEST(TensorOpsTest, MatMulInnerDimMismatchDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dims mismatch");
}

TEST(TensorOpsTest, MatMulExMatchesComposedOps) {
  // The fused epilogue must agree with MatMul + Add + activation composed
  // from separate kernels. Tolerance, not memcmp: the fused path may
  // contract the bias add differently under -ffp-contract.
  Rng rng(19);
  Tensor a = Tensor::RandNormal({3, 5, 20}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({20, 8}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({8}, 0, 1, rng);
  Tensor base = Add(MatMul(a, b), bias);
  EXPECT_TRUE(AllClose(
      MatMulEx(a, b, bias, gemm::Activation::kIdentity), base, 1e-5f));
  EXPECT_TRUE(AllClose(
      MatMulEx(a, b, bias, gemm::Activation::kRelu), Relu(base), 1e-5f));
  EXPECT_TRUE(AllClose(
      MatMulEx(a, b, bias, gemm::Activation::kGelu), Gelu(base), 1e-5f));
  EXPECT_TRUE(AllClose(
      MatMulEx(a, b, bias, gemm::Activation::kTanh), Tanh(base), 1e-5f));
  EXPECT_TRUE(AllClose(MatMulEx(a, b, bias, gemm::Activation::kSigmoid),
                       Sigmoid(base), 1e-5f));
  // Without a bias the fused product reduces to plain MatMul exactly.
  Tensor plain = MatMulEx(a, b, Tensor(), gemm::Activation::kIdentity);
  EXPECT_TRUE(AllClose(plain, MatMul(a, b), 0.0f, 0.0f));
}

TEST(TensorOpsTest, MatMulExBiasShapeMismatchDies) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({3, 4});
  Tensor bias = Tensor::Zeros({5});
  EXPECT_DEATH(MatMulEx(a, b, bias, gemm::Activation::kIdentity), "bias");
}

// ---- Reductions --------------------------------------------------------------

TEST(TensorOpsTest, SumAllAndMeanAll) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SumAll(a).item(), 21.0f);
  EXPECT_NEAR(MeanAll(a).item(), 3.5f, 1e-6f);
}

TEST(TensorOpsTest, SumAlongDim) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(a, {0}, /*keepdim=*/false);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_TRUE(AllClose(s0, Tensor({3}, {5, 7, 9})));
  Tensor s1 = Sum(a, {1}, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_TRUE(AllClose(s1, Tensor({2, 1}, {6, 15})));
}

TEST(TensorOpsTest, SumMultipleDims) {
  Tensor a = Tensor::Ones({2, 3, 4});
  Tensor s = Sum(a, {0, 2}, /*keepdim=*/false);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_TRUE(AllClose(s, Tensor::Full({3}, 8.0f)));
}

TEST(TensorOpsTest, SumNegativeDim) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(Sum(a, {-1}, false), Tensor({2}, {6, 15})));
}

TEST(TensorOpsTest, MeanAlongDim) {
  Tensor a({2, 2}, {1, 3, 5, 7});
  EXPECT_TRUE(AllClose(Mean(a, {1}, false), Tensor({2}, {2, 6})));
}

TEST(TensorOpsTest, MaxReduceAndArgMax) {
  Tensor a({2, 3}, {1, 9, 3, 8, 2, 7});
  Tensor mx = MaxReduce(a, 1, false);
  EXPECT_TRUE(AllClose(mx, Tensor({2}, {9, 8})));
  Tensor am = ArgMax(a, 1);
  EXPECT_TRUE(AllClose(am, Tensor({2}, {1, 0})));
}

TEST(TensorOpsTest, ArgMaxTieBreaksLow) {
  Tensor a({1, 3}, {5, 5, 5});
  EXPECT_EQ(ArgMax(a, 1).at({0}), 0.0f);
}

// ---- Movement ------------------------------------------------------------------

TEST(TensorOpsTest, PermuteMatchesManualTranspose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Permute(a, {1, 0});
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.at({j, i}), a.at({i, j}));
    }
  }
}

TEST(TensorOpsTest, Permute3D) {
  Rng rng(5);
  Tensor a = Tensor::RandNormal({2, 3, 4}, 0, 1, rng);
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.at({3, 1, 2}), a.at({1, 2, 3}));
}

TEST(TensorOpsTest, PermuteRoundTrip) {
  Rng rng(6);
  Tensor a = Tensor::RandNormal({3, 4, 5}, 0, 1, rng);
  Tensor p = Permute(a, {1, 2, 0});
  Tensor back = Permute(p, {2, 0, 1});
  EXPECT_TRUE(AllClose(back, a, 0.0f, 0.0f));
}

TEST(TensorOpsTest, TransposeSwapsAxes) {
  Rng rng(9);
  Tensor a = Tensor::RandNormal({2, 3, 4}, 0, 1, rng);
  Tensor t = Transpose(a, -1, -2);
  EXPECT_EQ(t.shape(), (Shape{2, 4, 3}));
  EXPECT_EQ(t.at({1, 3, 2}), a.at({1, 2, 3}));
}

TEST(TensorOpsTest, SliceMiddle) {
  Tensor a = Tensor::Arange(10).Reshape({2, 5});
  Tensor s = Slice(a, 1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_TRUE(AllClose(s, Tensor({2, 3}, {1, 2, 3, 6, 7, 8})));
}

TEST(TensorOpsTest, SliceOutOfRangeDies) {
  Tensor a = Tensor::Zeros({2, 5});
  EXPECT_DEATH(Slice(a, 1, 3, 3), "out of range");
}

TEST(TensorOpsTest, ConcatAlongDim) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 1}, {9, 10});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_TRUE(AllClose(c, Tensor({2, 3}, {1, 2, 9, 3, 4, 10})));
}

TEST(TensorOpsTest, ConcatThenSliceRoundTrip) {
  Rng rng(10);
  Tensor a = Tensor::RandNormal({2, 3, 4}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({2, 5, 4}, 0, 1, rng);
  Tensor c = Concat({a, b}, 1);
  EXPECT_TRUE(AllClose(Slice(c, 1, 0, 3), a, 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(Slice(c, 1, 3, 5), b, 0.0f, 0.0f));
}

TEST(TensorOpsTest, PadFrontBack) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor p = Pad(a, 1, 2, 1, 0.0f);
  EXPECT_EQ(p.shape(), (Shape{1, 6}));
  EXPECT_TRUE(AllClose(p, Tensor({1, 6}, {0, 0, 1, 2, 3, 0})));
}

TEST(TensorOpsTest, PadWithValue) {
  Tensor a({2}, {1, 2});
  Tensor p = Pad(a, 0, 1, 0, -7.0f);
  EXPECT_TRUE(AllClose(p, Tensor({3}, {-7, 1, 2})));
}

// ---- Softmax & helpers -----------------------------------------------------------

TEST(TensorOpsTest, SoftmaxSumsToOne) {
  Rng rng(12);
  Tensor a = Tensor::RandNormal({4, 7}, 0, 3, rng);
  Tensor s = Softmax(a, 1);
  Tensor sums = Sum(s, {1}, false);
  EXPECT_TRUE(AllClose(sums, Tensor::Ones({4}), 1e-5f, 1e-5f));
}

TEST(TensorOpsTest, SoftmaxStableForLargeInputs) {
  Tensor a({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_FALSE(HasNonFinite(s));
  EXPECT_GT(s.at({0, 1}), s.at({0, 0}));
}

TEST(TensorOpsTest, ExpandToAndReduceToInverse) {
  Tensor a({2, 1}, {3, 4});
  Tensor e = ExpandTo(a, {2, 5});
  EXPECT_EQ(e.shape(), (Shape{2, 5}));
  EXPECT_EQ(e.at({1, 4}), 4.0f);
  Tensor r = ReduceTo(Tensor::Ones({2, 5}), {2, 1});
  EXPECT_TRUE(AllClose(r, Tensor({2, 1}, {5, 5})));
}

TEST(TensorOpsTest, ReduceToDropsLeadingDims) {
  Tensor t = Tensor::Ones({4, 2, 3});
  Tensor r = ReduceTo(t, {2, 3});
  EXPECT_TRUE(AllClose(r, Tensor::Full({2, 3}, 4.0f)));
}

TEST(TensorOpsTest, HasNonFiniteDetectsNaN) {
  Tensor a({2}, {1.0f, std::numeric_limits<float>::quiet_NaN()});
  EXPECT_TRUE(HasNonFinite(a));
  EXPECT_FALSE(HasNonFinite(Tensor::Ones({3})));
}

// ---- Property-style sweeps --------------------------------------------------------

class BroadcastSweep
    : public ::testing::TestWithParam<std::tuple<Shape, Shape>> {};

TEST_P(BroadcastSweep, AddCommutes) {
  const auto& [sa, sb] = GetParam();
  Rng rng(17);
  Tensor a = Tensor::RandNormal(sa, 0, 1, rng);
  Tensor b = Tensor::RandNormal(sb, 0, 1, rng);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a), 0.0f, 0.0f));
}

TEST_P(BroadcastSweep, MulDistributesOverAdd) {
  const auto& [sa, sb] = GetParam();
  Rng rng(18);
  Tensor a = Tensor::RandNormal(sa, 0, 1, rng);
  Tensor b = Tensor::RandNormal(sb, 0, 1, rng);
  Tensor c = Tensor::RandNormal(sb, 0, 1, rng);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-5f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastSweep,
    ::testing::Values(std::make_tuple(Shape{3}, Shape{3}),
                      std::make_tuple(Shape{2, 3}, Shape{3}),
                      std::make_tuple(Shape{2, 3}, Shape{1, 3}),
                      std::make_tuple(Shape{2, 1, 4}, Shape{3, 1}),
                      std::make_tuple(Shape{5, 1}, Shape{1, 7}),
                      std::make_tuple(Shape{2, 3, 4}, Shape{2, 3, 4})));

class MatMulSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MatMulSweep, MatchesNaiveTripleLoop) {
  const auto& [m, k, n] = GetParam();
  Rng rng(19);
  Tensor a = Tensor::RandNormal({m, k}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({k, n}, 0, 1, rng);
  Tensor c = MatMul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a.at({i, kk}) * b.at({kk, j});
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4f);
    }
  }
}

TEST_P(MatMulSweep, AssociativeWithVector) {
  const auto& [m, k, n] = GetParam();
  Rng rng(20);
  Tensor a = Tensor::RandNormal({m, k}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({k, n}, 0, 1, rng);
  Tensor v = Tensor::RandNormal({n, 1}, 0, 1, rng);
  Tensor lhs = MatMul(MatMul(a, b), v);
  Tensor rhs = MatMul(a, MatMul(b, v));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-3f, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSweep,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 5, 3),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(1, 8, 1)));

class ReductionSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ReductionSweep, SumOverEachAxisMatchesTotal) {
  const Shape shape = GetParam();
  Rng rng(21);
  Tensor a = Tensor::RandNormal(shape, 0, 1, rng);
  const float total = SumAll(a).item();
  for (int64_t d = 0; d < a.rank(); ++d) {
    EXPECT_NEAR(SumAll(Sum(a, {d}, false)).item(), total, 1e-3f);
  }
}

TEST_P(ReductionSweep, PermutePreservesSum) {
  const Shape shape = GetParam();
  Rng rng(22);
  Tensor a = Tensor::RandNormal(shape, 0, 1, rng);
  std::vector<int64_t> perm(shape.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::reverse(perm.begin(), perm.end());
  EXPECT_NEAR(SumAll(Permute(a, perm)).item(), SumAll(a).item(), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReductionSweep,
                         ::testing::Values(Shape{4}, Shape{2, 5}, Shape{3, 4, 5},
                                           Shape{2, 3, 4, 5}));

}  // namespace
}  // namespace msd
