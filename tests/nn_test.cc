// Tests for Module, layers, and losses.
#include "nn/layers.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(LinearTest, OutputShapeAndDeterminism) {
  Rng rng(1);
  Linear fc(4, 3, rng);
  Variable x(Tensor::Ones({2, 4}));
  Variable y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  // Same seed -> same weights -> same output.
  Rng rng2(1);
  Linear fc2(4, 3, rng2);
  EXPECT_TRUE(AllClose(fc2.Forward(x).value(), y.value(), 0.0f, 0.0f));
}

TEST(LinearTest, HighRankInput) {
  Rng rng(2);
  Linear fc(5, 7, rng);
  Variable x(Tensor::Ones({2, 3, 4, 5}));
  Variable y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 7}));
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(3);
  Linear fc(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(fc.NumParameters(), 12);
  Variable zero(Tensor::Zeros({1, 4}));
  EXPECT_TRUE(AllClose(fc.Forward(zero).value(), Tensor::Zeros({1, 3})));
}

TEST(LinearTest, GradientsReachParameters) {
  Rng rng(4);
  Linear fc(4, 3, rng);
  Variable x(Tensor::Ones({2, 4}));
  Variable loss = MeanAll(Square(fc.Forward(x)));
  loss.Backward();
  for (const Variable& p : fc.Parameters()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_GT(MaxAbs(p.grad()), 0.0f);
  }
}

TEST(LinearTest, WrongInputDimDies) {
  Rng rng(5);
  Linear fc(4, 3, rng);
  Variable x(Tensor::Ones({2, 5}));
  EXPECT_DEATH(fc.Forward(x), "expected last dim");
}

TEST(ModuleTest, NamedParametersArePathQualified) {
  Rng rng(6);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 8, rng))
      .Add(std::make_unique<Activation>(ActivationKind::kGelu))
      .Add(std::make_unique<Linear>(8, 2, rng));
  const auto named = seq.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "stage0.weight");
  EXPECT_EQ(named[3].first, "stage2.bias");
  EXPECT_EQ(seq.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModuleTest, SetTrainingRecursesIntoChildren) {
  Rng rng(7);
  Sequential seq;
  auto* dropout = new Dropout(0.5f, rng);
  seq.Add(std::unique_ptr<Module>(dropout));
  seq.SetTraining(false);
  EXPECT_FALSE(dropout->training());
  seq.SetTraining(true);
  EXPECT_TRUE(dropout->training());
}

TEST(ActivationTest, AppliesSelectedFunction) {
  Variable x(Tensor({3}, {-1.0f, 0.0f, 2.0f}));
  EXPECT_TRUE(AllClose(Activation(ActivationKind::kRelu).Forward(x).value(),
                       Tensor({3}, {0, 0, 2})));
  EXPECT_TRUE(AllClose(Activation(ActivationKind::kIdentity).Forward(x).value(),
                       x.value()));
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(8);
  LayerNorm ln(16);
  Variable x(Tensor::RandNormal({4, 16}, 5.0f, 3.0f, rng));
  Tensor y = ln.Forward(x).value();
  // Fresh gamma=1, beta=0 => per-row mean 0, var ~1.
  Tensor mean = Mean(y, {1}, false);
  EXPECT_LT(MaxAbs(mean), 1e-4f);
  Tensor var = Mean(Square(y), {1}, false);
  for (int64_t i = 0; i < var.numel(); ++i) {
    EXPECT_NEAR(var.data()[i], 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, GradFlowsThroughAllParams) {
  Rng rng(9);
  LayerNorm ln(8);
  Variable x(Tensor::RandNormal({3, 8}, 0, 1, rng), true);
  Variable loss = MeanAll(Square(ln.Forward(x)));
  loss.Backward();
  EXPECT_TRUE(x.has_grad());
  for (const Variable& p : ln.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(DropoutTest, IdentityInEval) {
  Rng rng(10);
  Dropout drop(0.5f, rng);
  drop.SetTraining(false);
  Variable x(Tensor::Ones({100}));
  EXPECT_TRUE(AllClose(drop.Forward(x).value(), x.value(), 0.0f, 0.0f));
}

TEST(DropoutTest, DropsApproximatelyPFraction) {
  Rng rng(11);
  Dropout drop(0.3f, rng);
  Variable x(Tensor::Ones({10000}));
  Tensor y = drop.Forward(x).value();
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
}

TEST(DropPathTest, DropsWholeSamples) {
  Rng rng(12);
  DropPath drop(0.5f, rng);
  Variable x(Tensor::Ones({64, 4, 4}));
  Tensor y = drop.Forward(x).value();
  int64_t kept = 0;
  for (int64_t b = 0; b < 64; ++b) {
    const float first = y.at({b, 0, 0});
    // Every element within a sample must share the same mask value.
    for (int64_t i = 0; i < 4; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(y.at({b, i, j}), first);
      }
    }
    if (first != 0.0f) {
      EXPECT_NEAR(first, 2.0f, 1e-5f);
      ++kept;
    }
  }
  EXPECT_GT(kept, 16);
  EXPECT_LT(kept, 48);
}

TEST(SequentialTest, ComposesStagesInOrder) {
  Rng rng(13);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 4, rng))
      .Add(std::make_unique<Activation>(ActivationKind::kRelu));
  Variable x(Tensor::RandNormal({2, 4}, 0, 1, rng));
  Tensor y = seq.Forward(x).value();
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y.data()[i], 0.0f);
  EXPECT_EQ(seq.size(), 2);
}

// ---- Losses -----------------------------------------------------------------

TEST(LossTest, MseKnownValue) {
  Variable pred(Tensor({2}, {1.0f, 3.0f}));
  Variable target(Tensor({2}, {0.0f, 1.0f}));
  EXPECT_NEAR(MseLoss(pred, target).item(), (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(MaeLoss(pred, target).item(), (1.0f + 2.0f) / 2.0f, 1e-6f);
}

TEST(LossTest, MaskedMseIgnoresUnmasked) {
  Variable pred(Tensor({4}, {1, 2, 3, 4}));
  Variable target(Tensor({4}, {0, 0, 0, 0}));
  Tensor mask({4}, {1, 0, 1, 0});
  EXPECT_NEAR(MaskedMseLoss(pred, target, mask).item(), (1.0f + 9.0f) / 2.0f,
              1e-6f);
}

TEST(LossTest, MaskedMseEmptyMaskDies) {
  Variable pred(Tensor::Ones({3}));
  Variable target(Tensor::Zeros({3}));
  EXPECT_DEATH(MaskedMseLoss(pred, target, Tensor::Zeros({3})),
               "mask selects no elements");
}

TEST(LossTest, CrossEntropyUniformLogits) {
  // Uniform logits -> loss = log(M).
  Variable logits(Tensor::Zeros({2, 4}));
  Tensor labels({2}, {0.0f, 3.0f});
  EXPECT_NEAR(CrossEntropyLoss(logits, labels).item(), std::log(4.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyPerfectPrediction) {
  Tensor t = Tensor::Zeros({1, 3});
  t.set({0, 1}, 100.0f);
  Variable logits(t);
  Tensor labels({1}, {1.0f});
  EXPECT_NEAR(CrossEntropyLoss(logits, labels).item(), 0.0f, 1e-4f);
}

TEST(LossTest, CrossEntropyGradientPushesTowardLabel) {
  Variable logits(Tensor::Zeros({1, 3}), true);
  Tensor labels({1}, {2.0f});
  CrossEntropyLoss(logits, labels).Backward();
  const Tensor& g = logits.grad();
  // Gradient is softmax - onehot: positive on wrong classes, negative on the
  // labeled class.
  EXPECT_GT(g.at({0, 0}), 0.0f);
  EXPECT_GT(g.at({0, 1}), 0.0f);
  EXPECT_LT(g.at({0, 2}), 0.0f);
}

TEST(LossTest, CrossEntropyBadLabelDies) {
  Variable logits(Tensor::Zeros({1, 3}));
  EXPECT_DEATH(CrossEntropyLoss(logits, Tensor({1}, {3.0f})), "");
}

}  // namespace
}  // namespace msd
