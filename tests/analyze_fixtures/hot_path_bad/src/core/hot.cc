#include <cstdio>
#include <mutex>

namespace {
std::mutex mu;

void Helper() {
  std::FILE* f = std::fopen("x", "r");
  if (f != nullptr) std::fclose(f);
  std::lock_guard<std::mutex> lock(mu);
}
}  // namespace

// msd-hot-path: fixture root.
void HotRoot() {
  auto* p = new int(1);
  delete p;
  Helper();
}
