#include <mutex>

namespace {
std::mutex a_mu;
std::mutex b_mu;
}  // namespace

void First() {
  std::lock_guard<std::mutex> la(a_mu);
  std::lock_guard<std::mutex> lb(b_mu);
}

void Second() {
  std::lock_guard<std::mutex> la(a_mu);
  std::lock_guard<std::mutex> lb(b_mu);
}
