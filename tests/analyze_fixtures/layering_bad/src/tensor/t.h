#pragma once
#include "serve/s.h"
int TensorThing();
