#pragma once
int ServeThing();
