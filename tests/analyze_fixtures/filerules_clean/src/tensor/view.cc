#include <vector>

// A reference never allocates, so it is legal outside the owner files.
float Sum(const std::vector<float>& xs) {
  float total = 0.0F;
  for (float x : xs) total += x;
  return total;
}
