#pragma once
#include <vector>

// Allowlisted owner file: the buffer construction below is the legal one.
struct FixtureTensor {
  std::vector<float> storage;
};
