#include "core/ok.h"

// assert(x) in a comment must not fire, nor std::cout in a string.
int Ok() {
  const char* msg = "std::cout << assert(1)";
  return msg[0];
}
