#pragma once
int Ok();
