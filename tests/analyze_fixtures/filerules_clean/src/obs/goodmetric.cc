void Record(int& registry) {
  GetCounter("serve/requests_total");
  (void)registry;
}
