#pragma once
#include "tensor/t.h"
int ServeThing();
