#pragma once
int TensorThing();
