#include <atomic>

namespace {
std::atomic<int> flag{0};
std::atomic<int> data{0};
}  // namespace

int ReadFlag() { return flag.load(std::memory_order_acquire); }

void Publish(int v) {
  data.store(v);
  flag.store(1, std::memory_order_relaxed);
}
