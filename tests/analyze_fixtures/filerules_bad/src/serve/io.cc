#include <cstdio>

void Reply() { std::printf("late"); }
