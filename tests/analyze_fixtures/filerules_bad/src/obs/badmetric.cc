void Register(int& registry) { (void)registry; }

void Record(int& registry) {
  GetCounter("BadName");
  (void)registry;
}
