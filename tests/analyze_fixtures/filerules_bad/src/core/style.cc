#include "src/core/thing.h"
#include "../core/other.h"
#include <cassert>
#include <iostream>
#include <thread>

void Style(int x) {
  assert(x > 0);
  std::cout << x;
  std::thread t([] {});
  t.join();
}
