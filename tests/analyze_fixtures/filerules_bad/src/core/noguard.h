int NoGuard();
