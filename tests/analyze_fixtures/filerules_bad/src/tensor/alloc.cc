#include <cstdlib>
#include <vector>

void Alloc() {
  float* raw = new float[4];
  void* p = std::malloc(4);
  std::vector<float> buf(4);
  (void)raw;
  (void)p;
  (void)buf;
}
