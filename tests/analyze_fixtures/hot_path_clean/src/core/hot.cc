// msd-hot-path-safe: audited fixture chokepoint.
void SafeHelper() {
  auto* p = new int(1);
  delete p;
}

// msd-hot-path: fixture root.
void HotRoot() { SafeHelper(); }
