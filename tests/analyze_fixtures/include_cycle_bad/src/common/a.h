#pragma once
#include "common/b.h"
int A();
