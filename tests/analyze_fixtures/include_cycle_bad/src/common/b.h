#pragma once
#include "common/a.h"
int B();
