#include <atomic>

namespace {
std::atomic<int> flag{0};
std::atomic<long> hits{0};
}  // namespace

int ReadFlag() { return flag.load(std::memory_order_acquire); }

void Publish() {
  hits.fetch_add(1, std::memory_order_relaxed);
  flag.store(1, std::memory_order_release);
}
