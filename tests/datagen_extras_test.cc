// Targeted tests for the generator features added for experiment-shape
// fidelity: the lead-lag driver, structural anomaly types, classification
// noise texture and time shifts, and M4 phase drift.
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/anomaly_gen.h"
#include "datagen/classification_gen.h"
#include "datagen/m4like.h"
#include "datagen/series_builder.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(DriverTest, LeadLagMakesChannelsCrossPredictive) {
  // With a shared driver and spread lags, the lag-Delta cross-correlation
  // between a leading and a lagging channel must exceed the zero-lag one.
  SeriesConfig config;
  config.length = 2000;
  config.seed = 3;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec spec;
    spec.noise_sigma = 0.05;
    config.channels.push_back(spec);
  }
  config.driver = {1.0, 48.0, 0.01, 40, true};
  Tensor series = GenerateSeries(config);
  // Channel 0 has lag 0 (leads); channel 1 has lag 40.
  auto corr_at_shift = [&](int64_t shift) {
    double num = 0.0;
    double d0 = 0.0;
    double d1 = 0.0;
    for (int64_t t = 0; t + shift < 2000; ++t) {
      const double a = series.at({0, t});
      const double b = series.at({1, t + shift});
      num += a * b;
      d0 += a * a;
      d1 += b * b;
    }
    return num / std::sqrt(d0 * d1);
  };
  // Loadings have random sign; the *magnitude* of the aligned-lag
  // correlation is what carries predictability.
  EXPECT_GT(std::fabs(corr_at_shift(40)), std::fabs(corr_at_shift(0)) + 0.2);
}

TEST(DriverTest, NonlinearReadoutIsBounded) {
  SeriesConfig config;
  config.length = 500;
  config.seed = 4;
  ChannelSpec spec;
  spec.noise_sigma = 0.0;
  config.channels.push_back(spec);
  config.driver = {2.0, 24.0, 0.0, 0, true};
  Tensor series = GenerateSeries(config);
  // tanh readout bounds the driver contribution by amplitude * loading_max.
  EXPECT_LT(MaxAbs(series), 2.0f * 1.3f + 0.1f);
}

TEST(AnomalyTypesTest, StructuralAnomaliesPreserveAmplitude) {
  // Across seeds, some labeled segments must have near-normal amplitude
  // (frozen / reversed / desynced) — the signature of the structural types
  // that amplitude-threshold detectors miss.
  AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kMsl, 8);
  Tensor mean = Mean(data.train, {1}, true);
  Tensor dev = Mean(Abs(Sub(data.test, mean)), {0}, false);
  // Collect per-labeled-step deviations.
  std::vector<float> anomalous_devs;
  for (int64_t t = 0; t < dev.numel(); ++t) {
    if (data.labels[static_cast<size_t>(t)] == 1) {
      anomalous_devs.push_back(dev.data()[t]);
    }
  }
  ASSERT_GT(anomalous_devs.size(), 100u);
  std::sort(anomalous_devs.begin(), anomalous_devs.end());
  // Compare the low quantile of anomalous deviations with the typical
  // normal deviation: structural anomalies blend in amplitude-wise.
  double normal_mean = 0.0;
  int64_t normal_count = 0;
  for (int64_t t = 0; t < dev.numel(); ++t) {
    if (data.labels[static_cast<size_t>(t)] == 0) {
      normal_mean += dev.data()[t];
      ++normal_count;
    }
  }
  normal_mean /= normal_count;
  EXPECT_LT(anomalous_devs[anomalous_devs.size() / 10],
            normal_mean * 2.0);
}

TEST(ClassificationTextureTest, ClassesDifferInNoiseAutocorrelation) {
  // Two samples of the same class should have more similar lag-1 noise
  // autocorrelation than samples of different classes, on average.
  ClassificationSubset subset{"tex", 2, 128, 4, 80, 40, 2.0};
  ClassificationData data = GenerateClassificationData(subset, 12);
  auto lag1 = [&](const Tensor& x) {
    Tensor acf = AutocorrelationMatrix(x);
    return 0.5 * (acf.at({0, 0}) + acf.at({1, 0}));
  };
  // Average per-class lag-1 statistic.
  std::vector<double> per_class(4, 0.0);
  std::vector<int> counts(4, 0);
  for (size_t i = 0; i < data.train_x.size(); ++i) {
    per_class[static_cast<size_t>(data.train_y[i])] += lag1(data.train_x[i]);
    counts[static_cast<size_t>(data.train_y[i])]++;
  }
  for (int k = 0; k < 4; ++k) per_class[static_cast<size_t>(k)] /= counts[static_cast<size_t>(k)];
  // The spread of class means must be non-trivial (texture is class-coded).
  double lo = per_class[0];
  double hi = per_class[0];
  for (double v : per_class) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.15);
}

TEST(ClassificationShiftTest, SamplesOfOneClassAreNotPhaseLocked) {
  ClassificationSubset subset{"shift", 1, 128, 2, 60, 20, 0.1};
  ClassificationData data = GenerateClassificationData(subset, 13);
  // Find two same-class samples; with random time shifts their pointwise
  // correlation should frequently be visibly below 1.
  int below = 0;
  int pairs = 0;
  for (size_t i = 0; i + 2 < data.train_x.size(); i += 2) {
    if (data.train_y[i] != data.train_y[i + 2]) continue;
    const Tensor& a = data.train_x[i];
    const Tensor& b = data.train_x[i + 2];
    double num = 0.0;
    double da = 0.0;
    double db = 0.0;
    for (int64_t t = 0; t < 128; ++t) {
      num += a.at({0, t}) * b.at({0, t});
      da += a.at({0, t}) * a.at({0, t});
      db += b.at({0, t}) * b.at({0, t});
    }
    const double corr = num / std::sqrt(da * db);
    ++pairs;
    if (corr < 0.9) ++below;
  }
  ASSERT_GT(pairs, 5);
  EXPECT_GT(below, pairs / 4);
}

TEST(M4DriftTest, SeasonalPhaseDriftsAcrossLongHistories) {
  // With drifting phase, the correlation between the first and last seasonal
  // cycle of a long series decays relative to adjacent cycles.
  M4SubsetSpec spec{"DriftProbe", 8, 24, 480, 8};
  auto series = GenerateM4Like(spec, 3);
  int decayed = 0;
  for (const auto& s : series) {
    auto cycle_corr = [&](int64_t c1, int64_t c2) {
      double num = 0.0;
      double d1 = 0.0;
      double d2 = 0.0;
      for (int64_t t = 0; t < 24; ++t) {
        const double a = s.history[static_cast<size_t>(c1 * 24 + t)];
        const double b = s.history[static_cast<size_t>(c2 * 24 + t)];
        num += a * b;
        d1 += a * a;
        d2 += b * b;
      }
      return num / std::sqrt(d1 * d2);
    };
    if (cycle_corr(0, 1) > cycle_corr(0, 19)) ++decayed;
  }
  // Not guaranteed per-series (trend dominates correlation), but the
  // majority should show drift-induced decay.
  EXPECT_GE(decayed, 4);
}

}  // namespace
}  // namespace msd
