// Size-class tensor memory pool (tensor/pool.h, docs/PERFORMANCE.md):
// free-list reuse, MemoryScope-bounded cache lifetime, the MSD_DISABLE_POOL
// bypass, and the steady-state guarantee the trainer relies on — after a
// warm-up epoch, training allocations stop hitting the system allocator.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/msd_mixer.h"
#include "data/window_dataset.h"
#include "tasks/task_model.h"
#include "tasks/trainer.h"
#include "tensor/pool.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// The pool is process-global, so every expectation works on stat deltas.
class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = pool::Enabled();
    pool::SetEnabled(true);
    pool::Trim();
  }
  void TearDown() override {
    pool::SetEnabled(was_enabled_);
    pool::Trim();
  }
  bool was_enabled_ = false;
};

TEST_F(PoolTest, FreedBlockIsReusedForSameSizeClass) {
  pool::MemoryScope scope;
  const float* first_data = nullptr;
  {
    Tensor t = Tensor::Zeros({100});
    first_data = t.data();
  }
  // The freed block sits in its size class now.
  EXPECT_GT(pool::GetStats().blocks_cached, 0);
  const pool::PoolStats before = pool::GetStats();
  // Same class (anything rounding to the same power of two) reuses it.
  Tensor again = Tensor::Zeros({97});
  EXPECT_EQ(again.data(), first_data);
  const pool::PoolStats after = pool::GetStats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST_F(PoolTest, RecycledBlocksAreZeroedByTensorZeros) {
  pool::MemoryScope scope;
  { Tensor dirty = Tensor::Full({64}, 3.5f); }
  Tensor clean = Tensor::Zeros({64});  // recycles the dirty block
  for (int64_t i = 0; i < clean.numel(); ++i) {
    ASSERT_EQ(clean.data()[i], 0.0f);
  }
}

TEST_F(PoolTest, OutermostMemoryScopeExitTrims) {
  {
    pool::MemoryScope outer;
    {
      pool::MemoryScope inner;
      { Tensor t = Tensor::Zeros({256}); }
      EXPECT_GT(pool::GetStats().bytes_cached, 0);
    }
    // Inner exit is not outermost: the cache survives.
    EXPECT_GT(pool::GetStats().bytes_cached, 0);
  }
  EXPECT_EQ(pool::GetStats().bytes_cached, 0);
  EXPECT_EQ(pool::GetStats().blocks_cached, 0);
}

TEST_F(PoolTest, DisabledPoolCachesNothing) {
  pool::SetEnabled(false);
  pool::MemoryScope scope;
  const pool::PoolStats before = pool::GetStats();
  { Tensor t = Tensor::Zeros({512}); }
  Tensor again = Tensor::Zeros({512});
  const pool::PoolStats after = pool::GetStats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(pool::GetStats().blocks_cached, 0);
}

TEST_F(PoolTest, NumericsIdenticalWithPoolDisabled) {
  // The pool only changes where buffers live; every byte of every result
  // must match with caching off (the MSD_DISABLE_POOL escape hatch).
  auto compute = [] {
    Rng rng(41);
    Tensor a = Tensor::RandNormal({33, 65}, 0, 1, rng);
    Tensor b = Tensor::RandNormal({65, 17}, 0, 1, rng);
    Tensor bias = Tensor::RandNormal({17}, 0, 1, rng);
    return MatMulEx(a, b, bias, gemm::Activation::kGelu);
  };
  Tensor pooled = compute();
  pool::SetEnabled(false);
  pool::Trim();
  Tensor fresh = compute();
  ASSERT_EQ(pooled.shape(), fresh.shape());
  EXPECT_EQ(std::memcmp(pooled.data(), fresh.data(),
                        static_cast<size_t>(pooled.numel()) * sizeof(float)),
            0);
}

TEST_F(PoolTest, SteadyStateTrainingHitsTheCache) {
  // First epoch warms every size class; from then on the trainer's
  // allocations recycle instead of hitting the system allocator. The outer
  // scope keeps the cache alive between the two Train() calls, as a long
  // experiment driver would.
  pool::MemoryScope scope;
  Rng series_rng(13);
  Tensor series = Tensor::RandNormal({3, 300}, 0, 1, series_rng);
  ForecastWindowDataset data(series, 48, 24, 4);
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 3;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.task = TaskType::kForecast;
  config.horizon = 24;
  Rng model_rng(7);
  MsdMixer mixer(config, model_rng);
  MsdMixerTaskModel model(&mixer, /*lambda=*/0.3f);
  TrainerConfig trainer;
  trainer.epochs = 1;
  trainer.batch_size = 8;
  trainer.max_batches_per_epoch = 4;

  Train(model, data, trainer, ForecastMseTaskLoss);  // warm-up epoch
  const pool::PoolStats warm = pool::GetStats();
  Train(model, data, trainer, ForecastMseTaskLoss);  // steady state
  const pool::PoolStats steady = pool::GetStats();

  const int64_t hits = steady.hits - warm.hits;
  const int64_t misses = steady.misses - warm.misses;
  ASSERT_GT(hits + misses, 0);
  const double hit_rate = static_cast<double>(hits) /
                          static_cast<double>(hits + misses);
  EXPECT_GE(hit_rate, 0.95) << hits << " hits, " << misses << " misses";
}

}  // namespace
}  // namespace msd
