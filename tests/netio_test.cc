// SocketServer tests (serve/netio.h): many concurrent AF_UNIX connections
// multiplexed on one epoll thread, pipelined lines, replies posted from
// foreign threads through the eventfd wake path, the connection cap, and
// the oversized-line guard. The handler here is a trivial echo — protocol
// semantics over the socket are covered by registry_test.cc and the
// msd_serve selftest; this suite isolates the transport.
#include "serve/netio.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/worker.h"

namespace msd {
namespace {

const bool kSigpipeIgnored = [] {
  std::signal(SIGPIPE, SIG_IGN);
  return true;
}();

std::string TestSocketPath(const std::string& tag) {
  return ::testing::TempDir() + "netio_test_" + std::to_string(::getpid()) +
         "_" + tag + ".sock";
}

int ConnectUnixRetry(const std::string& path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    int rc;
    do {
      rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) return fd;
    close(fd);
    if (errno != EAGAIN && errno != ECONNREFUSED && errno != ENOENT) {
      return -1;
    }
    usleep(1000);
  }
  return -1;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t w =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

// Reads one '\n'-framed reply; empty string on EOF/error.
std::string ReadLine(int fd) {
  std::string reply;
  char c;
  for (;;) {
    const ssize_t n = read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::string();
    if (c == '\n') return reply;
    reply.push_back(c);
  }
}

std::string RoundTrip(int fd, const std::string& line) {
  if (!SendAll(fd, line + "\n")) return std::string();
  return ReadLine(fd);
}

// Server + loop thread, torn down in reverse order automatically.
struct ServerHarness {
  explicit ServerHarness(const serve::SocketServerConfig& config,
                         serve::LineHandler handler)
      : server(config, std::move(handler)) {
    listen_status = server.Listen();
    if (listen_status.ok()) {
      loop.Start(1, [this](int64_t) { server.Run(); });
    }
  }
  ~ServerHarness() {
    server.Shutdown();
    loop.Join();
  }
  serve::SocketServer server;
  runtime::WorkerGroup loop;
  Status listen_status = Status::OK();
};

TEST(SocketServerTest, ServesManyConcurrentConnections) {
  serve::SocketServerConfig config;
  config.path = TestSocketPath("many");
  config.max_conns = 64;
  ServerHarness harness(config, [](std::string line,
                                   std::function<void(std::string)> reply) {
    reply("ACK " + line);
  });
  ASSERT_TRUE(harness.listen_status.ok())
      << harness.listen_status.ToString();

  constexpr int64_t kConns = 48;
  std::atomic<int64_t> bad{0};
  {
    runtime::WorkerGroup clients;
    clients.Start(kConns, [&](int64_t c) {
      const int fd = ConnectUnixRetry(config.path);
      if (fd < 0) {
        bad.fetch_add(1);
        return;
      }
      for (int i = 0; i < 4; ++i) {
        const std::string line =
            "hello_" + std::to_string(c) + "_" + std::to_string(i);
        if (RoundTrip(fd, line) != "ACK " + line) bad.fetch_add(1);
      }
      close(fd);
    });
    clients.Join();
  }
  EXPECT_EQ(bad.load(), 0);
  // All clients closed; the loop reaps them as the EOFs arrive.
  for (int i = 0; i < 200 && harness.server.open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(harness.server.open_connections(), 0);
}

TEST(SocketServerTest, PipelinedLinesAnswerInOrder) {
  serve::SocketServerConfig config;
  config.path = TestSocketPath("pipeline");
  ServerHarness harness(config, [](std::string line,
                                   std::function<void(std::string)> reply) {
    reply("R:" + line);
  });
  ASSERT_TRUE(harness.listen_status.ok());

  const int fd = ConnectUnixRetry(config.path);
  ASSERT_GE(fd, 0);
  // One write carrying three frames; the loop extracts and answers all of
  // them (inline handler => replies enqueue in arrival order).
  ASSERT_TRUE(SendAll(fd, "a\nb\nc\n"));
  EXPECT_EQ(ReadLine(fd), "R:a");
  EXPECT_EQ(ReadLine(fd), "R:b");
  EXPECT_EQ(ReadLine(fd), "R:c");
  close(fd);
}

TEST(SocketServerTest, RepliesCanBePostedFromAnotherThread) {
  // The handler parks every reply closure; a separate thread resolves them
  // later — exercising the eventfd Post path the batcher completions use.
  struct Parked {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<std::string, std::function<void(std::string)>>> q;
    bool stop = false;
  };
  auto parked = std::make_shared<Parked>();

  serve::SocketServerConfig config;
  config.path = TestSocketPath("async");
  ServerHarness harness(
      config, [parked](std::string line,
                       std::function<void(std::string)> reply) {
        std::lock_guard<std::mutex> lock(parked->mu);
        parked->q.emplace_back(std::move(line), std::move(reply));
        parked->cv.notify_one();
      });
  ASSERT_TRUE(harness.listen_status.ok());

  runtime::WorkerGroup replier;
  replier.Start(1, [parked](int64_t) {
    std::unique_lock<std::mutex> lock(parked->mu);
    for (;;) {
      parked->cv.wait(lock,
                      [&parked] { return parked->stop || !parked->q.empty(); });
      if (parked->q.empty()) return;
      auto item = std::move(parked->q.front());
      parked->q.pop_front();
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      item.second("DELAYED " + item.first);
      lock.lock();
    }
  });

  const int fd = ConnectUnixRetry(config.path);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(RoundTrip(fd, "one"), "DELAYED one");
  EXPECT_EQ(RoundTrip(fd, "two"), "DELAYED two");
  close(fd);

  {
    std::lock_guard<std::mutex> lock(parked->mu);
    parked->stop = true;
  }
  parked->cv.notify_all();
  replier.Join();
}

TEST(SocketServerTest, RejectsConnectionsPastTheCap) {
  serve::SocketServerConfig config;
  config.path = TestSocketPath("cap");
  config.max_conns = 2;
  ServerHarness harness(config, [](std::string line,
                                   std::function<void(std::string)> reply) {
    reply("ACK " + line);
  });
  ASSERT_TRUE(harness.listen_status.ok());

  const int fd1 = ConnectUnixRetry(config.path);
  const int fd2 = ConnectUnixRetry(config.path);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  // Round trips prove both connections are registered with the loop before
  // the third tries (connect alone can race the accept).
  EXPECT_EQ(RoundTrip(fd1, "a"), "ACK a");
  EXPECT_EQ(RoundTrip(fd2, "b"), "ACK b");

  const int fd3 = ConnectUnixRetry(config.path);
  ASSERT_GE(fd3, 0);
  const std::string refused = ReadLine(fd3);
  EXPECT_EQ(refused.rfind("ERROR ResourceExhausted", 0), 0u) << refused;
  EXPECT_EQ(ReadLine(fd3), "");  // then the server closes it
  close(fd3);

  // Closing one admitted connection frees a slot.
  close(fd1);
  for (int i = 0; i < 200 && harness.server.open_connections() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int fd4 = ConnectUnixRetry(config.path);
  ASSERT_GE(fd4, 0);
  EXPECT_EQ(RoundTrip(fd4, "c"), "ACK c");
  close(fd4);
  close(fd2);
}

TEST(SocketServerTest, ClosesConnectionOnOversizedLine) {
  serve::SocketServerConfig config;
  config.path = TestSocketPath("oversize");
  config.max_line_bytes = 64;
  std::atomic<int64_t> handled{0};
  ServerHarness harness(
      config, [&handled](std::string line,
                         std::function<void(std::string)> reply) {
        handled.fetch_add(1);
        reply("ACK " + line);
      });
  ASSERT_TRUE(harness.listen_status.ok());

  const int fd = ConnectUnixRetry(config.path);
  ASSERT_GE(fd, 0);
  // 200 unframed bytes blow the 64-byte line cap: the server closes the
  // connection without ever invoking the handler.
  ASSERT_TRUE(SendAll(fd, std::string(200, 'x')));
  EXPECT_EQ(ReadLine(fd), "");
  close(fd);
  EXPECT_EQ(handled.load(), 0);

  // The server stays healthy for well-behaved clients.
  const int fd2 = ConnectUnixRetry(config.path);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(RoundTrip(fd2, "small"), "ACK small");
  close(fd2);
}

TEST(SocketServerTest, ShutdownWithOpenConnectionsIsClean) {
  serve::SocketServerConfig config;
  config.path = TestSocketPath("shutdown");
  auto harness = std::make_unique<ServerHarness>(
      config, [](std::string line, std::function<void(std::string)> reply) {
        reply("ACK " + line);
      });
  ASSERT_TRUE(harness->listen_status.ok());
  const int fd = ConnectUnixRetry(config.path);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(RoundTrip(fd, "x"), "ACK x");
  // Destroy the server while the client is still connected: Run() must
  // return promptly and the client observes EOF rather than a hang.
  harness.reset();
  EXPECT_EQ(ReadLine(fd), "");
  close(fd);
}

}  // namespace
}  // namespace msd
