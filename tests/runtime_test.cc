// Unit tests for the parallel execution runtime (src/runtime/): pool
// startup/shutdown, the deterministic chunk geometry, exception propagation
// out of worker chunks, and the nested-loop inline fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace msd {
namespace runtime {
namespace {

// Restores MSD_THREADS on scope exit so tests can vary the environment.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(ThreadPoolTest, DefaultNumThreadsReadsEnv) {
  {
    ScopedEnv env("MSD_THREADS", "3");
    EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  }
  {
    ScopedEnv env("MSD_THREADS", "1");
    EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  }
  {
    ScopedEnv env("MSD_THREADS", nullptr);
    EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  }
}

TEST(ThreadPoolTest, StartupShutdownAndResize) {
  // A locally owned pool (not Global) exercises construction/destruction.
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    std::atomic<int64_t> ran{0};
    pool.RunChunks(16, [&](int64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 16);
    pool.Resize(2);
    EXPECT_EQ(pool.num_threads(), 2);
    ran = 0;
    pool.RunChunks(8, [&](int64_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
  }
  // A size-1 pool spawns no workers; chunks run inline on the caller.
  ThreadPool serial(1);
  int64_t ran = 0;
  serial.RunChunks(5, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 5);
}

TEST(ThreadPoolTest, SetNumThreadsResizesGlobalAndZeroRestoresDefault) {
  const int64_t original = NumThreads();
  SetNumThreads(4);
  EXPECT_EQ(NumThreads(), 4);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), ThreadPool::DefaultNumThreads());
  SetNumThreads(original);
}

TEST(ThreadPoolTest, ScopedThreadsAppliesAndRestores) {
  const int64_t original = NumThreads();
  {
    ScopedThreads scoped(3);
    EXPECT_EQ(NumThreads(), 3);
    {
      ScopedThreads inner(0);  // n <= 0: inherit, no resize
      EXPECT_EQ(NumThreads(), 3);
    }
    EXPECT_EQ(NumThreads(), 3);
  }
  EXPECT_EQ(NumThreads(), original);
}

TEST(ChunkGeometryTest, NumChunksCeilsAndClamps) {
  EXPECT_EQ(NumChunks(100, 10), 10);
  EXPECT_EQ(NumChunks(101, 10), 11);
  EXPECT_EQ(NumChunks(5, 10), 1);
  EXPECT_EQ(NumChunks(1, 1), 1);
  // Clamped to the fixed upper bound, independent of thread count.
  EXPECT_EQ(NumChunks(1'000'000, 1), kMaxChunksPerLoop);
}

TEST(ChunkGeometryTest, ChunkBoundsPartitionTheRange) {
  for (int64_t n : {1, 7, 63, 64, 65, 1000}) {
    for (int64_t chunks : {int64_t{1}, int64_t{3}, kMaxChunksPerLoop}) {
      if (chunks > n) continue;
      const int64_t begin = 11;
      int64_t expected_next = begin;
      for (int64_t c = 0; c < chunks; ++c) {
        const auto [b, e] = ChunkBounds(begin, n, chunks, c);
        EXPECT_EQ(b, expected_next) << "gap before chunk " << c;
        EXPECT_GE(e, b);
        // Near-equal split: sizes differ by at most one, larger ones first.
        EXPECT_GE(e - b, n / chunks);
        EXPECT_LE(e - b, n / chunks + 1);
        expected_next = e;
      }
      EXPECT_EQ(expected_next, begin + n) << "chunks do not cover the range";
    }
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnceAtAnyThreadCount) {
  const int64_t n = 10'000;
  for (int64_t threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    std::vector<int> hits(static_cast<size_t>(n), 0);
    ParallelFor(0, n, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), n);
    for (int i : hits) ASSERT_EQ(i, 1);
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool called = false;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  ParallelFor(5, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NestedLoopsFallBackToInlineExecution) {
  ScopedThreads scoped(4);
  const int64_t outer = 8;
  std::vector<int> in_region(static_cast<size_t>(outer), 0);
  std::vector<int64_t> inner_sum(static_cast<size_t>(outer), 0);
  ParallelFor(0, outer, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      in_region[static_cast<size_t>(i)] = InParallelRegion() ? 1 : 0;
      // Nested loop: must run inline on this worker (and not deadlock).
      ParallelFor(0, 100, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t j = ib; j < ie; ++j) {
          inner_sum[static_cast<size_t>(i)] += j;
        }
      });
    }
  });
  for (int64_t i = 0; i < outer; ++i) {
    EXPECT_EQ(in_region[static_cast<size_t>(i)], 1)
        << "chunk body " << i << " did not observe the parallel region";
    EXPECT_EQ(inner_sum[static_cast<size_t>(i)], 99 * 100 / 2);
  }
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  ScopedThreads scoped(4);
  auto throwing_loop = [] {
    ParallelFor(0, 6400, 1, [](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) {
        if (i == 4321) throw std::runtime_error("chunk failure");
      }
    });
  };
  EXPECT_THROW(throwing_loop(), std::runtime_error);
  try {
    throwing_loop();
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "chunk failure");
  }
  // The pool must remain fully usable after a failed loop.
  std::atomic<int64_t> ran{0};
  ParallelFor(0, 1000, 1,
              [&](int64_t b, int64_t e) { ran.fetch_add(e - b); });
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ParallelReduceTest, MatchesSerialSum) {
  const int64_t n = 100'000;
  double expected = 0.0;
  for (int64_t i = 0; i < n; ++i) expected += static_cast<double>(i) * 0.5;
  for (int64_t threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const double sum = ParallelReduce(
        0, n, 64, 0.0,
        [](int64_t b, int64_t e) {
          double s = 0.0;
          for (int64_t i = b; i < e; ++i) s += static_cast<double>(i) * 0.5;
          return s;
        },
        [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(sum, expected);
  }
}

TEST(ParallelReduceTest, CombineOrderIsFixedAcrossThreadCounts) {
  // Floating-point sums over adversarially scaled values are sensitive to
  // combine order; the fixed tree must give bit-identical results for every
  // thread count.
  const int64_t n = 65'536;
  auto run = [n] {
    return ParallelReduce(
        0, n, 256, 0.0f,
        [](int64_t b, int64_t e) {
          float s = 0.0f;
          for (int64_t i = b; i < e; ++i) {
            s += 1.0f / static_cast<float>(1 + (i * 2654435761u) % 9973);
          }
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  float results[3];
  const int64_t counts[3] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    ScopedThreads scoped(counts[k]);
    results[k] = run();
  }
  EXPECT_EQ(results[0], results[1]);  // exact: no tolerance
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelReduceTest, NonCommutativeCombinePreservesChunkOrder) {
  // String concatenation is associative but not commutative: the tree must
  // fold chunks in ascending index order regardless of execution order.
  const int64_t n = 640;
  std::string expected;
  for (int64_t i = 0; i < n; ++i) expected += std::to_string(i % 10);
  for (int64_t threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const std::string got = ParallelReduce(
        0, n, 10, std::string(),
        [](int64_t b, int64_t e) {
          std::string s;
          for (int64_t i = b; i < e; ++i) s += std::to_string(i % 10);
          return s;
        },
        [](const std::string& a, const std::string& b) { return a + b; });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const int value = ParallelReduce(
      3, 3, 1, 42, [](int64_t, int64_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(value, 42);
}

}  // namespace
}  // namespace runtime
}  // namespace msd
