// Tests for the observability subsystem: counter/gauge/histogram semantics,
// span nesting + self-time accounting, JSON snapshot round-trips, and
// thread-safety of the hot-path instruments.
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace msd {
namespace obs {
namespace {

// Spins for roughly `us` microseconds of wall time so span durations are
// strictly positive without depending on sleep granularity. Only used by the
// profiler tests, which compile away when profiling is disabled.
[[maybe_unused]] void BusyWaitUs(int64_t us) {
  const int64_t end = MonotonicNowNs() + us * 1000;
  while (MonotonicNowNs() < end) {
  }
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetIsLastWriteWins) {
  Gauge g;
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(GaugeTest, SetMaxKeepsMaximum) {
  Gauge g;
  g.SetMax(10.0);
  g.SetMax(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.SetMax(11.0);
  EXPECT_DOUBLE_EQ(g.value(), 11.0);
}

TEST(GaugeTest, SetMaxIsRaceFreeUnderContention) {
  // Regression for the SetMax CAS loop: with many writers racing, the final
  // value must be the global maximum — a torn read-modify-write would let a
  // smaller late writer overwrite a larger earlier one.
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kValues = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < kValues; ++i) {
        g.SetMax(static_cast<double>(t * kValues + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kValues - 1));
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(250.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 256.5);
  const auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(QuantileTest, ExactRanksAndInterpolation) {
  // Counts go through a real Histogram rather than a hand-written array so
  // the test covers the exact BucketCounts() layout QuantileFromBuckets
  // documents: 5 observations in (0,10], 5 in (10,20], none beyond.
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 5; ++i) h.Observe(5.0);
  for (int i = 0; i < 5; ++i) h.Observe(15.0);
  const std::vector<double>& bounds = h.upper_bounds();
  const std::vector<int64_t> counts = h.BucketCounts();
  // rank 5 is the last observation of bucket (0,10]: its upper edge.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.5), 10.0);
  // rank 9 is the 4th of 5 in (10,20]: 10 + 10 * 4/5.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 0.9), 18.0);
  // q=1 hits the last observation: the top of its bucket.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, 1.0), 20.0);
  // q clamps below at the first observation's interpolated position.
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, counts, -1.0), 2.0);
  // Histogram::ValueAtQuantile is the same computation end to end.
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.9), 18.0);
}

TEST(QuantileTest, OverflowBucketClampsToLargestBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 3; ++i) h.Observe(9.0);  // everything overflows
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.99), 2.0);
}

TEST(QuantileTest, EmptyHistogramReturnsZero) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.ValueAtQuantile(0.5), 0.0);
}

TEST(QuantileTest, ValueAtQuantileMatchesExactOnLogSpacedBuckets) {
  // 1000 uniform observations over [1, 10000): interpolated quantiles on
  // 32-per-decade log buckets must land within one bucket ratio (~7.5%) of
  // the exact empirical quantile.
  Histogram h(LogSpacedBounds(1.0, 1e5, 32));
  for (int i = 0; i < 1000; ++i) h.Observe(1.0 + i * 10.0);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = 1.0 + (std::ceil(q * 1000.0) - 1.0) * 10.0;
    const double approx = h.ValueAtQuantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.075) << "q=" << q;
  }
}

TEST(LogSpacedBoundsTest, CoversRangeMonotonically) {
  const std::vector<double> bounds = LogSpacedBounds(1.0, 100.0, 1);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_NEAR(bounds[1], 10.0, 1e-9);
  EXPECT_NEAR(bounds[2], 100.0, 1e-7);

  const std::vector<double> fine = LogSpacedBounds(1.0, 1e7, 48);
  EXPECT_GE(fine.back(), 1e7);
  for (size_t i = 1; i < fine.size(); ++i) {
    EXPECT_GT(fine[i], fine[i - 1]);
    // Adjacent bounds stay ~4.9% apart: the quantile interpolation error
    // bound the serving agreement gate relies on.
    EXPECT_LT(fine[i] / fine[i - 1], 1.05);
  }
}

TEST(MetricsRegistryTest, HandlesAreStableAndSurviveReset) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test/stable");
  Counter& b = registry.GetCounter("test/stable");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  registry.ResetAll();
  EXPECT_EQ(b.value(), 0);
  a.Add(1);  // handle still valid after reset
  EXPECT_EQ(b.value(), 1);
}

TEST(MetricsRegistryTest, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("tensor/allocs").Add(12);
  registry.GetGauge("train/lr").Set(0.003);
  Histogram& h = registry.GetHistogram("autograd/tape_nodes", {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(5000.0);

  JsonValue doc;
  ASSERT_TRUE(JsonParse(registry.ToJson(), &doc));
  ASSERT_TRUE(doc.is_object());

  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* allocs = counters->Find("tensor/allocs");
  ASSERT_NE(allocs, nullptr);
  EXPECT_DOUBLE_EQ(allocs->number, 12.0);

  const JsonValue* lr = doc.Find("gauges")->Find("train/lr");
  ASSERT_NE(lr, nullptr);
  EXPECT_DOUBLE_EQ(lr->number, 0.003);

  const JsonValue* hist = doc.Find("histograms")->Find("autograd/tape_nodes");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 5005.0);
  const JsonValue* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets->array[0].Find("count")->number, 1.0);
  EXPECT_EQ(buckets->array[2].Find("le")->str, "inf");
  EXPECT_DOUBLE_EQ(buckets->array[2].Find("count")->number, 1.0);
}

TEST(MetricsRegistryTest, MultithreadedCounterIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Mix of repeated lookups and a cached handle, as real call sites do.
      Counter& cached = registry.GetCounter("test/mt");
      for (int i = 0; i < kIncrements; ++i) cached.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("test/mt").value(),
            int64_t{kThreads} * kIncrements);
}

TEST(JsonTest, EscapeAndParseSpecialCharacters) {
  const std::string raw = "a\"b\\c\nd\te";
  const std::string doc = "{\"k\":\"" + JsonEscape(raw) + "\"}";
  JsonValue parsed;
  ASSERT_TRUE(JsonParse(doc, &parsed));
  EXPECT_EQ(parsed.Find("k")->str, raw);
}

TEST(JsonTest, ParsesNestedStructuresAndNumbers) {
  JsonValue v;
  ASSERT_TRUE(JsonParse(R"({"a":[1,-2.5,3e2],"b":{"c":true,"d":null}})", &v));
  EXPECT_DOUBLE_EQ(v.Find("a")->array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(v.Find("a")->array[2].number, 300.0);
  EXPECT_TRUE(v.Find("b")->Find("c")->boolean);
  EXPECT_EQ(v.Find("b")->Find("d")->type, JsonValue::Type::kNull);
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(JsonParse("{", &v));
  EXPECT_FALSE(JsonParse("{\"a\":}", &v));
  EXPECT_FALSE(JsonParse("[1,2,]trailing", &v));
  EXPECT_FALSE(JsonParse("{\"a\":1} extra", &v));
  EXPECT_FALSE(JsonParse("\"unterminated", &v));
}

#if MSD_PROFILING_ENABLED

TEST(ProfilerTest, SpanNestingAndSelfTime) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  profiler.SetEnabled(true);
  {
    ScopedSpan outer("test/outer");
    BusyWaitUs(200);
    {
      ScopedSpan inner("test/inner");
      BusyWaitUs(200);
    }
    {
      ScopedSpan inner("test/inner");
      BusyWaitUs(200);
    }
    BusyWaitUs(100);
  }
  const auto aggregates = profiler.Aggregates();
  ASSERT_EQ(aggregates.count("test/outer"), 1u);
  ASSERT_EQ(aggregates.count("test/inner"), 1u);
  const SpanStats& outer = aggregates.at("test/outer");
  const SpanStats& inner = aggregates.at("test/inner");
  EXPECT_EQ(outer.count, 1);
  EXPECT_EQ(inner.count, 2);
  // Inclusive time covers the children; self time excludes them exactly.
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
  // Inner spans have no children: self == total.
  EXPECT_EQ(inner.self_ns, inner.total_ns);
  EXPECT_GE(inner.min_ns, 0);
  EXPECT_LE(inner.min_ns, inner.max_ns);
}

TEST(ProfilerTest, AggregateReportJsonParses) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  {
    ScopedSpan span("test/report");
    BusyWaitUs(50);
  }
  JsonValue doc;
  ASSERT_TRUE(JsonParse(profiler.AggregateReportJson(), &doc));
  const JsonValue* span = doc.Find("test/report");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->Find("count")->number, 1.0);
  EXPECT_GT(span->Find("total_ms")->number, 0.0);
  EXPECT_GE(span->Find("max_ms")->number, span->Find("min_ms")->number);
}

TEST(ProfilerTest, ChromeTraceEventsNestCorrectly) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  {
    ScopedSpan outer("test/trace_outer");
    BusyWaitUs(100);
    {
      ScopedSpan inner("test/trace_inner");
      BusyWaitUs(100);
    }
  }
  JsonValue doc;
  ASSERT_TRUE(JsonParse(profiler.ChromeTraceJson(), &doc));
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 2u);
  // Events are recorded on close, so the inner span appears first.
  const JsonValue& inner = events->array[0];
  const JsonValue& outer = events->array[1];
  EXPECT_EQ(inner.Find("name")->str, "test/trace_inner");
  EXPECT_EQ(outer.Find("name")->str, "test/trace_outer");
  EXPECT_EQ(outer.Find("ph")->str, "X");
  // Correct nesting: inner's [ts, ts+dur] lies inside outer's.
  const double outer_ts = outer.Find("ts")->number;
  const double inner_ts = inner.Find("ts")->number;
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner.Find("dur")->number,
            outer_ts + outer.Find("dur")->number);
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  profiler.SetEnabled(false);
  {
    ScopedSpan span("test/disabled");
    BusyWaitUs(10);
  }
  profiler.SetEnabled(true);
  EXPECT_EQ(profiler.Aggregates().count("test/disabled"), 0u);
}

TEST(ProfilerTest, TraceCapacityCapsEventsButNotAggregates) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  profiler.SetTraceCapacity(2);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test/capped");
  }
  EXPECT_EQ(profiler.Aggregates().at("test/capped").count, 5);
  EXPECT_EQ(profiler.dropped_events(), 3);
  JsonValue doc;
  ASSERT_TRUE(JsonParse(profiler.ChromeTraceJson(), &doc));
  EXPECT_EQ(doc.Find("traceEvents")->array.size(), 2u);
  profiler.SetTraceCapacity(65536);
  profiler.Reset();
}

#endif  // MSD_PROFILING_ENABLED

}  // namespace
}  // namespace obs
}  // namespace msd
