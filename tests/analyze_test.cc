// Fixture tests for the msd_analyze passes (tools/analyze/, docs/ANALYSIS.md).
//
// Each pass gets a minimal violating fixture tree under
// tests/analyze_fixtures/<name>/src and a clean twin that must stay silent.
// The per-file rules migrated from the PR 2/5/6 token lint additionally pin
// their diagnostic text verbatim: the suppression file keys on it and the
// old lint's contract was grep-stable messages.

#include "analyze/analyzer.h"

#include <string>

#include "gtest/gtest.h"
#include "obs/json.h"

namespace msd {
namespace analyze {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(MSD_ANALYZE_FIXTURES_DIR) + "/" + name;
}

// Runs the analyzer over one fixture tree. `suppressions` is a file name
// inside the fixture directory; explicit files are required to exist.
AnalyzerResult RunFixture(const std::string& fixture,
                   const std::string& suppressions = "") {
  AnalyzerOptions options;
  if (!suppressions.empty()) {
    options.suppressions_path = FixtureRoot(fixture) + "/" + suppressions;
    options.suppressions_required = true;
  }
  return RunAnalyzer(FixtureRoot(fixture), options);
}

int CountRule(const AnalyzerResult& result, const std::string& rule) {
  int n = 0;
  for (const Finding& f : result.findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// Message of the unique finding matching (rule, file, line); "" when absent.
std::string MessageAt(const AnalyzerResult& result, const std::string& rule,
                      const std::string& file, int line) {
  for (const Finding& f : result.findings) {
    if (f.rule == rule && f.file == file && f.line == line) return f.message;
  }
  return "";
}

bool HasFindingAt(const AnalyzerResult& result, const std::string& rule,
                  const std::string& file, int line) {
  return !MessageAt(result, rule, file, line).empty();
}

// ---------------------------------------------------------------------------
// Pass 1: include-layering.
// ---------------------------------------------------------------------------

TEST(LayeringPass, FlagsUpwardInclude) {
  const AnalyzerResult result = RunFixture("layering_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.unsuppressed, 1);
  ASSERT_TRUE(HasFindingAt(result, "layering", "src/tensor/t.h", 2));
  const std::string msg = MessageAt(result, "layering", "src/tensor/t.h", 2);
  EXPECT_NE(msg.find("breaks the layer DAG"), std::string::npos) << msg;
  EXPECT_NE(msg.find("serve"), std::string::npos) << msg;
}

TEST(LayeringPass, DownwardIncludeIsSilent) {
  const AnalyzerResult result = RunFixture("layering_clean");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.unsuppressed, 0);
  EXPECT_TRUE(result.findings.empty());
}

TEST(LayeringPass, IncludeCycleIsAlwaysFatal) {
  // a.h <-> b.h sit in the same subsystem (a legal layering direction), but
  // the file-granularity cycle must still be reported.
  const AnalyzerResult result = RunFixture("include_cycle_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_GE(CountRule(result, "include-cycle"), 1);
  EXPECT_EQ(CountRule(result, "layering"), 0);
  for (const Finding& f : result.findings) {
    EXPECT_NE(f.message.find("include cycle (always fatal)"),
              std::string::npos)
        << f.message;
  }
}

TEST(LayeringPass, RanksMatchTheDeclaredDag) {
  EXPECT_EQ(LayerRank("common"), 0);
  EXPECT_LT(LayerRank("tensor"), LayerRank("autograd"));
  EXPECT_LT(LayerRank("autograd"), LayerRank("nn"));
  EXPECT_LT(LayerRank("core"), LayerRank("serve"));
  EXPECT_EQ(LayerRank("serve"), 9);
  EXPECT_EQ(LayerRank("not_a_subsystem"), -1);
}

// ---------------------------------------------------------------------------
// Pass 2: lock-order.
// ---------------------------------------------------------------------------

TEST(LockOrderPass, OpposedOrdersFormACycle) {
  const AnalyzerResult result = RunFixture("lock_order_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  // One finding per closing acquisition: b-under-a in TakeAThenB and
  // a-under-b in TakeBThenA each complete the two-mutex cycle.
  EXPECT_EQ(CountRule(result, "lock-order"), 2);
  ASSERT_TRUE(HasFindingAt(result, "lock-order", "src/core/locks.cc", 10));
  ASSERT_TRUE(HasFindingAt(result, "lock-order", "src/core/locks.cc", 15));
  const std::string msg =
      MessageAt(result, "lock-order", "src/core/locks.cc", 10);
  EXPECT_NE(msg.find("potential deadlock"), std::string::npos) << msg;
  EXPECT_NE(msg.find("TakeAThenB"), std::string::npos) << msg;
  // File-scope mutexes key on the file basename, not the function, so the
  // two functions' pairs merge into one graph.
  EXPECT_NE(msg.find("locks.cc::a_mu"), std::string::npos) << msg;
  EXPECT_NE(msg.find("locks.cc::b_mu"), std::string::npos) << msg;
}

TEST(LockOrderPass, ConsistentOrderIsSilent) {
  const AnalyzerResult result = RunFixture("lock_order_clean");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------------------
// Pass 3: hot-path reachability.
// ---------------------------------------------------------------------------

TEST(HotPathPass, FlagsAllocIoAndLockReachableFromRoot) {
  const AnalyzerResult result = RunFixture("hot_path_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  // The root allocates directly; the transitively-called Helper does IO and
  // takes a lock.
  EXPECT_EQ(CountRule(result, "hot-path-alloc"), 1);
  ASSERT_TRUE(HasFindingAt(result, "hot-path-alloc", "src/core/hot.cc", 16));
  EXPECT_GE(CountRule(result, "hot-path-io"), 2);
  ASSERT_TRUE(HasFindingAt(result, "hot-path-io", "src/core/hot.cc", 9));
  EXPECT_EQ(CountRule(result, "hot-path-lock"), 1);
  ASSERT_TRUE(HasFindingAt(result, "hot-path-lock", "src/core/hot.cc", 10));
  // Findings in callees carry the call chain from the root.
  const std::string msg =
      MessageAt(result, "hot-path-lock", "src/core/hot.cc", 10);
  EXPECT_NE(msg.find("HotRoot -> Helper"), std::string::npos) << msg;
  // Nothing but the three hot-path rules fires on this fixture.
  EXPECT_EQ(static_cast<int>(result.findings.size()),
            CountRule(result, "hot-path-alloc") +
                CountRule(result, "hot-path-io") +
                CountRule(result, "hot-path-lock"));
}

TEST(HotPathPass, SafeChokepointStopsTraversal) {
  // SafeHelper allocates but is annotated msd-hot-path-safe: neither its
  // body nor anything past it is scanned.
  const AnalyzerResult result = RunFixture("hot_path_clean");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------------------
// Pass 4: atomics audit.
// ---------------------------------------------------------------------------

TEST(AtomicsPass, FlagsDefaultOrderAndRelaxedPublish) {
  const AnalyzerResult result = RunFixture("atomics_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.unsuppressed, 2);
  ASSERT_TRUE(
      HasFindingAt(result, "atomic-unannotated", "src/obs/atomics.cc", 11));
  EXPECT_NE(MessageAt(result, "atomic-unannotated", "src/obs/atomics.cc", 11)
                .find("data.store() takes the default memory_order_seq_cst"),
            std::string::npos);
  ASSERT_TRUE(HasFindingAt(result, "atomic-relaxed-publish",
                           "src/obs/atomics.cc", 12));
  EXPECT_NE(
      MessageAt(result, "atomic-relaxed-publish", "src/obs/atomics.cc", 12)
          .find("needs memory_order_release"),
      std::string::npos);
}

TEST(AtomicsPass, AnnotatedPairingIsSilent) {
  const AnalyzerResult result = RunFixture("atomics_clean");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------------------
// Migrated per-file rules: every rule fires at its pinned line with the
// PR 2/5/6 lint's diagnostic text, unchanged.
// ---------------------------------------------------------------------------

TEST(FileRules, EveryMigratedRuleFiresWithUnchangedText) {
  const AnalyzerResult result = RunFixture("filerules_bad");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.files_checked, 5);
  EXPECT_EQ(result.unsuppressed, 11);

  EXPECT_EQ(MessageAt(result, "include-path", "src/core/style.cc", 1),
            "includes are rooted at src/: drop the src/ prefix");
  EXPECT_EQ(MessageAt(result, "include-path", "src/core/style.cc", 2),
            "no parent-relative includes; spell the path from src/");
  EXPECT_EQ(MessageAt(result, "no-assert", "src/core/style.cc", 8),
            "use MSD_CHECK (common/check.h) instead of assert: it survives "
            "NDEBUG and prints operands");
  EXPECT_EQ(MessageAt(result, "no-cout", "src/core/style.cc", 9),
            "library code must not write to std::cout; use stderr or the obs "
            "subsystem");
  EXPECT_EQ(MessageAt(result, "no-raw-thread", "src/core/style.cc", 10),
            "std::thread outside src/runtime/: parallelism must go through "
            "runtime::ParallelFor so MSD_THREADS determinism holds");
  EXPECT_EQ(MessageAt(result, "header-guard", "src/core/noguard.h", 1),
            "header has neither #pragma once nor a matching #ifndef/#define "
            "include guard");
  EXPECT_EQ(MessageAt(result, "no-raw-alloc", "src/tensor/alloc.cc", 5),
            "no raw new in tensor/autograd; use make_shared/make_unique "
            "ownership");
  EXPECT_EQ(MessageAt(result, "no-raw-alloc", "src/tensor/alloc.cc", 6),
            "no malloc in tensor/autograd; use RAII containers");
  EXPECT_EQ(MessageAt(result, "no-raw-buffer", "src/tensor/alloc.cc", 7),
            "float buffers in src/tensor come from pool::AllocateShared "
            "(tensor/pool.h) or Tensor itself, not std::vector<float>");
  EXPECT_EQ(
      MessageAt(result, "no-blocking-io-in-serve-hot-path", "src/serve/io.cc",
                3),
      "printf in src/serve stalls every request in the batch; move "
      "transport/logging IO to the serving front-ends");
  EXPECT_EQ(
      MessageAt(result, "metric-name-taxonomy", "src/obs/badmetric.cc", 4),
      "metric name \"BadName\" must be two or more '/'-separated [a-z0-9_] "
      "segments (docs/OBSERVABILITY.md taxonomy)");
}

TEST(FileRules, LexerViewsKeepCleanCodeSilent) {
  // assert/std::cout inside comments and string literals, references to
  // std::vector<float>, the allowlisted tensor.h owner, and a taxonomy-clean
  // metric name: none of it may fire.
  const AnalyzerResult result = RunFixture("filerules_clean");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.findings.empty());
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

TEST(Suppressions, JustifiedEntriesSuppressAndAreRecorded) {
  const AnalyzerResult result = RunFixture("atomics_bad", "suppressions.txt");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(result.unsuppressed, 0);
  EXPECT_EQ(result.suppressed, 2);
  for (const Finding& f : result.findings) {
    EXPECT_TRUE(f.suppressed) << f.Key();
    EXPECT_FALSE(f.justification.empty()) << f.Key();
  }
}

TEST(Suppressions, UnmatchedEntryIsReportedStale) {
  const AnalyzerResult result = RunFixture("atomics_bad", "suppressions_stale.txt");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_EQ(CountRule(result, "stale-suppression"), 1);
  EXPECT_EQ(result.unsuppressed, 1);  // the stale entry itself
  EXPECT_EQ(result.suppressed, 2);
  // The finding points at the suppression file entry to delete.
  ASSERT_TRUE(HasFindingAt(result, "stale-suppression",
                           "suppressions_stale.txt", 3));
  EXPECT_NE(MessageAt(result, "stale-suppression", "suppressions_stale.txt", 3)
                .find("no-cout:src/obs/atomics.cc:99"),
            std::string::npos);
}

TEST(Suppressions, MissingJustificationIsAConfigError) {
  const AnalyzerResult result = RunFixture("atomics_bad", "suppressions_nojust.txt");
  ASSERT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("missing a justification"), std::string::npos)
      << result.error;
}

TEST(Suppressions, MissingExplicitFileIsAConfigError) {
  const AnalyzerResult result = RunFixture("atomics_bad", "no_such_file.txt");
  ASSERT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("cannot read"), std::string::npos)
      << result.error;
}

TEST(Analyzer, MissingSrcRootIsAConfigError) {
  const AnalyzerResult result = RunFixture("no_such_fixture");
  EXPECT_FALSE(result.error.empty());
}

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

TEST(Reports, TextKeepsTheGrepStableLintFormat) {
  const std::string text = RenderText(RunFixture("filerules_bad"));
  EXPECT_NE(text.find("src/core/style.cc:8: no-assert: use MSD_CHECK"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("msd_analyze: 5 files, 11 finding(s), 0 suppressed"),
            std::string::npos)
      << text;
}

TEST(Reports, TextOmitsSuppressedFindings) {
  const std::string text = RenderText(RunFixture("atomics_bad", "suppressions.txt"));
  EXPECT_EQ(text.find("atomic-unannotated"), std::string::npos) << text;
  EXPECT_NE(text.find("msd_analyze: 1 files, 0 finding(s), 2 suppressed"),
            std::string::npos)
      << text;
}

TEST(Reports, JsonParsesAndMirrorsTheResult) {
  const AnalyzerResult result = RunFixture("filerules_bad");
  obs::JsonValue doc;
  ASSERT_TRUE(obs::JsonParse(RenderJson(result), &doc));
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("files"), nullptr);
  EXPECT_EQ(doc.Find("files")->number, 5.0);
  EXPECT_EQ(doc.Find("unsuppressed")->number, 11.0);
  EXPECT_EQ(doc.Find("suppressed")->number, 0.0);
  const obs::JsonValue* findings = doc.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->array.size(), result.findings.size());
  for (size_t i = 0; i < findings->array.size(); ++i) {
    const obs::JsonValue& entry = findings->array[i];
    ASSERT_TRUE(entry.is_object());
    EXPECT_EQ(entry.Find("rule")->str, result.findings[i].rule);
    EXPECT_EQ(entry.Find("file")->str, result.findings[i].file);
    EXPECT_EQ(entry.Find("line")->number,
              static_cast<double>(result.findings[i].line));
    // The taxonomy message embeds double quotes; a parse success plus the
    // round-tripped text proves the escaping.
    EXPECT_EQ(entry.Find("message")->str, result.findings[i].message);
  }
}

TEST(Reports, JsonCarriesJustificationsForSuppressedFindings) {
  const AnalyzerResult result = RunFixture("atomics_bad", "suppressions.txt");
  obs::JsonValue doc;
  ASSERT_TRUE(obs::JsonParse(RenderJson(result), &doc));
  const obs::JsonValue* findings = doc.Find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->array.size(), 2U);
  for (const obs::JsonValue& entry : findings->array) {
    ASSERT_NE(entry.Find("suppressed"), nullptr);
    EXPECT_TRUE(entry.Find("suppressed")->boolean);
    ASSERT_NE(entry.Find("justification"), nullptr);
    EXPECT_FALSE(entry.Find("justification")->str.empty());
  }
}

}  // namespace
}  // namespace analyze
}  // namespace msd
