// Multi-tenant registry tests (docs/SERVING.md): manifest parsing
// (duplicates, version regressions, bad keys), ServedModel admission
// quotas, atomic hot-swap semantics — in-flight requests finish on the
// session they were admitted to while new requests route to the
// replacement — plus a concurrent Get/Swap hammer the TSan leg runs, and
// the ModelService text protocol (MODEL prefix, LIST, RELOAD, STATS).
#include "serve/registry.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "obs/json.h"
#include "runtime/worker.h"
#include "serve/server.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// Quantization decisions depend on per-step calibration; pin the pass off so
// a harness-level MSD_QUANT=1 sweep cannot perturb the bit-identity checks.
const bool kQuantPinnedOff = [] {
  ::setenv("MSD_QUANT", "0", /*overwrite=*/1);
  return true;
}();

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "registry_test_" +
         std::to_string(::getpid()) + "_" + name;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

MsdMixerConfig SmallConfig(int64_t horizon = 8) {
  MsdMixerConfig config;
  config.input_length = 32;
  config.channels = 2;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = horizon;
  return config;
}

Tensor RandomWindow(uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandNormal({2, 32}, 0.0f, 1.0f, rng);
}

// Random-init session with per-model weights (`seed`): distinct seeds give
// distinct outputs, so version crossing is detectable bit-for-bit.
std::unique_ptr<serve::InferenceSession> MakeSession(
    uint64_t seed, int64_t horizon = 8, int64_t synthetic_compute_us = 0) {
  MsdMixerConfig config = SmallConfig(horizon);
  Rng rng(seed);
  MsdMixer mixer(config, rng);
  const std::string path =
      TempPath("ckpt_" + std::to_string(seed) + ".msdckpt");
  EXPECT_TRUE(SaveCheckpoint(mixer, path).ok());
  serve::InferenceSessionConfig sc;
  sc.model = config;
  sc.max_batch = 8;
  sc.synthetic_compute_us = synthetic_compute_us;
  auto session = serve::InferenceSession::Create(sc, path);
  std::remove(path.c_str());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

serve::MicroBatcherConfig FastBatcher() {
  serve::MicroBatcherConfig bc;
  bc.max_batch = 8;
  bc.max_delay_us = 500;
  bc.queue_capacity = 64;
  return bc;
}

std::shared_ptr<serve::ServedModel> MakeServed(
    const std::string& name, int64_t version, uint64_t seed,
    int64_t max_inflight = 0, int64_t synthetic_compute_us = 0,
    int64_t horizon = 8) {
  serve::ManifestEntry entry;
  entry.name = name;
  entry.version = version;
  entry.checkpoint = "(in-memory)";
  entry.lookback = 32;
  entry.horizon = horizon;
  entry.max_inflight = max_inflight;
  return std::make_shared<serve::ServedModel>(
      entry, MakeSession(seed, horizon, synthetic_compute_us), FastBatcher());
}

// ---- manifest parsing ----------------------------------------------------

TEST(ManifestTest, ParsesEntriesDefaultsAndComments) {
  auto m = serve::ParseManifest(
      "# fleet\n"
      "model name=alpha version=3 checkpoint=a.msdckpt lookback=48 "
      "horizon=12 model_dim=24 hidden_dim=40 max_batch=4 quantize=1 "
      "instance_norm=0\n"
      "\n"
      "model name=beta version=1 checkpoint=b.msdckpt default=1 "
      "max_inflight=7  # trailing comment\n");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m.value().entries.size(), 2u);
  const serve::ManifestEntry& a = m.value().entries[0];
  EXPECT_EQ(a.name, "alpha");
  EXPECT_EQ(a.version, 3);
  EXPECT_EQ(a.checkpoint, "a.msdckpt");
  EXPECT_EQ(a.lookback, 48);
  EXPECT_EQ(a.horizon, 12);
  EXPECT_EQ(a.model_dim, 24);
  EXPECT_EQ(a.hidden_dim, 40);
  EXPECT_EQ(a.max_batch, 4);
  EXPECT_TRUE(a.quantize);
  EXPECT_FALSE(a.use_instance_norm);
  EXPECT_FALSE(a.is_default);
  const serve::ManifestEntry& b = m.value().entries[1];
  EXPECT_EQ(b.max_inflight, 7);
  EXPECT_TRUE(b.is_default);
  EXPECT_EQ(m.value().default_model, "beta");
}

TEST(ManifestTest, DefaultFallsBackToFirstEntry) {
  auto m = serve::ParseManifest(
      "model name=a version=1 checkpoint=a.msdckpt\n"
      "model name=b version=1 checkpoint=b.msdckpt\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().default_model, "a");
}

TEST(ManifestTest, RejectsDuplicateName) {
  auto m = serve::ParseManifest(
      "model name=a version=1 checkpoint=a.msdckpt\n"
      "model name=a version=2 checkpoint=a2.msdckpt\n");
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("duplicate model 'a'"),
            std::string::npos)
      << m.status().ToString();
  // The diagnostic cites the first declaration's line.
  EXPECT_NE(m.status().message().find("line 1"), std::string::npos);
}

TEST(ManifestTest, RejectsVersionRegression) {
  auto m = serve::ParseManifest(
      "model name=a version=5 checkpoint=a.msdckpt\n"
      "model name=a version=4 checkpoint=old.msdckpt\n");
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("version regression"),
            std::string::npos)
      << m.status().ToString();
  // Equal versions are a regression too: versions must strictly increase.
  auto eq = serve::ParseManifest(
      "model name=a version=5 checkpoint=a.msdckpt\n"
      "model name=a version=5 checkpoint=same.msdckpt\n");
  ASSERT_FALSE(eq.ok());
  EXPECT_NE(eq.status().message().find("version regression"),
            std::string::npos);
}

TEST(ManifestTest, RejectsBadKeysValuesAndMissingFields) {
  EXPECT_FALSE(serve::ParseManifest("server name=a\n").ok());
  EXPECT_FALSE(
      serve::ParseManifest("model name=a version=1\n").ok());  // no ckpt
  EXPECT_FALSE(
      serve::ParseManifest("model name=a checkpoint=a.msdckpt\n").ok());
  EXPECT_FALSE(
      serve::ParseManifest("model version=1 checkpoint=a.msdckpt\n").ok());
  EXPECT_FALSE(serve::ParseManifest(
                   "model name=Alpha version=1 checkpoint=a.msdckpt\n")
                   .ok());  // names are [a-z0-9_]+
  EXPECT_FALSE(serve::ParseManifest(
                   "model name=a version=zero checkpoint=a.msdckpt\n")
                   .ok());
  EXPECT_FALSE(serve::ParseManifest(
                   "model name=a version=0 checkpoint=a.msdckpt\n")
                   .ok());  // versions start at 1
  EXPECT_FALSE(serve::ParseManifest(
                   "model name=a version=1 checkpoint=a.msdckpt lookback=0\n")
                   .ok());
  EXPECT_FALSE(serve::ParseManifest(
                   "model name=a version=1 checkpoint=a.msdckpt default=2\n")
                   .ok());
  auto unknown = serve::ParseManifest(
      "model name=a version=1 checkpoint=a.msdckpt color=red\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown key 'color'"),
            std::string::npos);
}

TEST(ManifestTest, RejectsMultipleDefaultsAndEmpty) {
  auto two = serve::ParseManifest(
      "model name=a version=1 checkpoint=a.msdckpt default=1\n"
      "model name=b version=1 checkpoint=b.msdckpt default=1\n");
  ASSERT_FALSE(two.ok());
  EXPECT_NE(two.status().message().find("only one model"), std::string::npos);
  EXPECT_FALSE(serve::ParseManifest("# nothing but comments\n").ok());
}

// ---- registry routing and swap -------------------------------------------

TEST(ModelRegistryTest, GetRoutesDefaultNamedAndUnknown) {
  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(registry.Add(MakeServed("alpha", 1, 11)).ok());
  ASSERT_TRUE(registry.Add(MakeServed("beta", 1, 22)).ok());
  registry.set_default_model("alpha");

  auto by_name = registry.Get("beta");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name.value()->name(), "beta");
  auto by_default = registry.Get("");
  ASSERT_TRUE(by_default.ok());
  EXPECT_EQ(by_default.value()->name(), "alpha");
  auto unknown = registry.Get("ghost");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  const auto models = registry.List();
  ASSERT_EQ(models.size(), 2u);
  EXPECT_EQ(models[0]->name(), "alpha");  // sorted
  EXPECT_EQ(models[1]->name(), "beta");
}

TEST(ModelRegistryTest, AddRejectsDuplicateName) {
  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(registry.Add(MakeServed("m", 1, 11)).ok());
  Status dup = registry.Add(MakeServed("m", 2, 12));
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, SwapRejectsRegressionAndUnknownName) {
  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(registry.Add(MakeServed("m", 3, 11)).ok());
  Status regression = registry.Swap(MakeServed("m", 3, 12));
  EXPECT_EQ(regression.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(regression.message().find("version regression"),
            std::string::npos);
  Status unknown = registry.Swap(MakeServed("ghost", 1, 13));
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  // The live model is untouched by either failure.
  EXPECT_EQ(registry.Get("m").value()->version(), 3);
}

TEST(ModelRegistryTest, InFlightRequestFinishesOnOldSessionAcrossSwap) {
  const Tensor window = RandomWindow(500);
  serve::ModelRegistry registry(FastBatcher());
  // v1 pads every forward with a 20ms busy-spin so the swap happens while
  // the request is mid-compute on v1's batcher.
  ASSERT_TRUE(
      registry
          .Add(MakeServed("m", 1, 11, /*max_inflight=*/0,
                          /*synthetic_compute_us=*/20000))
          .ok());
  auto v1 = registry.Get("m");
  ASSERT_TRUE(v1.ok());
  const Tensor expect_v1 = v1.value()->session()->Predict(window).value();

  std::promise<StatusOr<Tensor>> inflight_promise;
  std::future<StatusOr<Tensor>> inflight = inflight_promise.get_future();
  ASSERT_TRUE(v1.value()
                  ->SubmitAsync(Tensor(window),
                                [&inflight_promise](StatusOr<Tensor> r) {
                                  inflight_promise.set_value(std::move(r));
                                })
                  .ok());

  auto v2 = MakeServed("m", 2, 22);
  const Tensor expect_v2 = v2->session()->Predict(window).value();
  ASSERT_TRUE(registry.Swap(std::move(v2)).ok());

  // New lookups route to v2 immediately...
  auto now_live = registry.Get("m");
  ASSERT_TRUE(now_live.ok());
  EXPECT_EQ(now_live.value()->version(), 2);
  auto fresh = now_live.value()->Handle(window);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(BitIdentical(fresh.value(), expect_v2));

  // ...while the admitted request completes on the session it was admitted
  // to — the v1 bytes, not v2's.
  StatusOr<Tensor> old_result = inflight.get();
  ASSERT_TRUE(old_result.ok()) << old_result.status().ToString();
  EXPECT_TRUE(BitIdentical(old_result.value(), expect_v1));
  EXPECT_FALSE(BitIdentical(old_result.value(), expect_v2));

  v1 = StatusOr<std::shared_ptr<serve::ServedModel>>(
      Status::Internal("dropped"));
  registry.ReapRetired();
}

TEST(ServedModelTest, QuotaRejectsBeyondMaxInflight) {
  const Tensor window = RandomWindow(600);
  auto model = MakeServed("quota", 1, 33, /*max_inflight=*/1,
                          /*synthetic_compute_us=*/20000);
  const int64_t rejected_before = model->rejected_total();

  std::promise<StatusOr<Tensor>> slot_promise;
  std::future<StatusOr<Tensor>> slot = slot_promise.get_future();
  ASSERT_TRUE(model
                  ->SubmitAsync(Tensor(window),
                                [&slot_promise](StatusOr<Tensor> r) {
                                  slot_promise.set_value(std::move(r));
                                })
                  .ok());
  // The single quota slot is taken until the callback runs.
  auto over = model->Handle(window);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(model->rejected_total(), rejected_before + 1);

  ASSERT_TRUE(slot.get().ok());
  // The slot is released on completion; admission works again.
  EXPECT_TRUE(model->Handle(window).ok());
}

TEST(ModelRegistryTest, ConcurrentGetAndSwapHammer) {
  const Tensor window = RandomWindow(700);
  constexpr int64_t kVersions = 5;
  constexpr int64_t kReaders = 4;
  constexpr int64_t kRequestsPerReader = 30;

  // Every version's expected bytes, computed up front: a reply that matches
  // none of them means a torn swap or a cross-version batch.
  std::vector<std::shared_ptr<serve::ServedModel>> versions;
  std::vector<Tensor> expected;
  for (int64_t v = 1; v <= kVersions; ++v) {
    versions.push_back(
        MakeServed("m", v, /*seed=*/100 + static_cast<uint64_t>(v)));
    expected.push_back(
        versions.back()->session()->Predict(window).value());
  }

  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(registry.Add(versions[0]).ok());
  registry.set_default_model("m");

  std::atomic<int64_t> bad_replies{0};
  std::atomic<int64_t> failed{0};
  runtime::WorkerGroup readers;
  readers.Start(kReaders, [&](int64_t) {
    for (int64_t i = 0; i < kRequestsPerReader; ++i) {
      auto model = registry.Get("m");
      if (!model.ok()) {
        failed.fetch_add(1);
        continue;
      }
      auto reply = model.value()->Handle(window);
      if (!reply.ok()) {
        failed.fetch_add(1);
        continue;
      }
      bool matched = false;
      for (const Tensor& want : expected) {
        if (BitIdentical(reply.value(), want)) {
          matched = true;
          break;
        }
      }
      if (!matched) bad_replies.fetch_add(1);
    }
  });
  for (int64_t v = 2; v <= kVersions; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(registry.Swap(versions[static_cast<size_t>(v) - 1]).ok());
  }
  readers.Join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_EQ(registry.Get("m").value()->version(), kVersions);
  registry.ReapRetired();
}

// ---- Reload from a pipeline checkpoint -----------------------------------

Tensor ReloadSeries(uint64_t seed) {
  SeriesConfig config;
  config.name = "registry_test";
  config.length = 300;
  config.seed = seed;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec channel;
    channel.level = 1.0 + c;
    channel.seasonals.push_back({24.0, 1.0, 0.3 * c, 2});
    channel.noise_sigma = 0.05;
    config.channels.push_back(channel);
  }
  return GenerateSeries(config);
}

TEST(ModelRegistryTest, ReloadBuildsNextVersionFromCheckpoint) {
  const Tensor series = ReloadSeries(42);
  ForecastPipelineConfig pc;
  pc.lookback = 32;
  pc.horizon = 8;
  pc.trainer.epochs = 1;
  pc.trainer.batch_size = 16;
  pc.trainer.max_batches_per_epoch = 4;
  pc.trainer.early_stop_patience = 0;
  ForecastPipeline pipe_v1(pc, /*seed=*/5);
  ForecastPipeline pipe_v2(pc, /*seed=*/13);
  pipe_v1.Fit(series);
  pipe_v2.Fit(series);
  const std::string ckpt_v1 = TempPath("reload_v1.msdckpt");
  const std::string ckpt_v2 = TempPath("reload_v2.msdckpt");
  ASSERT_TRUE(pipe_v1.Save(ckpt_v1).ok());
  ASSERT_TRUE(pipe_v2.Save(ckpt_v2).ok());

  auto manifest = serve::ParseManifest(
      "model name=m version=1 checkpoint=" + ckpt_v1 +
      " lookback=32 horizon=8 max_batch=4\n");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  {
    serve::ModelRegistry registry(FastBatcher());
    ASSERT_TRUE(registry.Load(manifest.value()).ok());
    EXPECT_EQ(registry.default_model(), "m");
    EXPECT_EQ(registry.Get("m").value()->version(), 1);

    Status reloaded = registry.Reload("m", ckpt_v2);
    ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
    auto live = registry.Get("m");
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(live.value()->version(), 2);
    EXPECT_EQ(live.value()->entry().checkpoint, ckpt_v2);

    // The reloaded model serves exactly the v2 checkpoint's bytes.
    serve::ForecastSessionOptions so;
    so.lookback = 32;
    so.horizon = 8;
    so.max_batch = 1;
    auto oracle = serve::CreateForecastSession(ckpt_v2, so);
    ASSERT_TRUE(oracle.ok());
    const Tensor window = Slice(series, 1, 0, pc.lookback);
    auto served = live.value()->Handle(window);
    ASSERT_TRUE(served.ok());
    EXPECT_TRUE(BitIdentical(served.value(),
                             oracle.value()->Predict(window).value()));

    // A bad checkpoint must not disturb the live version.
    EXPECT_FALSE(registry.Reload("m", "does_not_exist.msdckpt").ok());
    EXPECT_FALSE(registry.Reload("ghost", ckpt_v2).ok());
    EXPECT_EQ(registry.Get("m").value()->version(), 2);
  }
  std::remove(ckpt_v1.c_str());
  std::remove((ckpt_v1 + ".meta").c_str());
  std::remove(ckpt_v2.c_str());
  std::remove((ckpt_v2 + ".meta").c_str());
}

// ---- ModelService protocol -----------------------------------------------

// The oracle must see exactly the bytes the service parses: request lines
// are %.6g-rounded, so expected replies are computed from the round-tripped
// window text (the determinism contract then makes them byte-identical).
std::string ExpectedReply(serve::InferenceSession* session,
                          const std::string& line) {
  auto window = serve::ParseWindowLine(line, /*channels=*/0, /*length=*/0);
  EXPECT_TRUE(window.ok());
  auto out = session->Predict(window.value());
  EXPECT_TRUE(out.ok());
  return serve::FormatTensorLine(out.value());
}

TEST(ModelServiceTest, ModelPrefixRoutingListAndErrors) {
  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(
      registry.Add(MakeServed("alpha", 1, 11, 0, 0, /*horizon=*/8)).ok());
  ASSERT_TRUE(
      registry.Add(MakeServed("beta", 2, 22, 0, 0, /*horizon=*/4)).ok());
  registry.set_default_model("alpha");
  serve::ModelService service(&registry);

  const std::string line = serve::FormatTensorLine(RandomWindow(800));
  const std::string want_alpha =
      ExpectedReply(registry.Get("alpha").value()->session(), line);
  const std::string want_beta =
      ExpectedReply(registry.Get("beta").value()->session(), line);
  EXPECT_NE(want_alpha, want_beta);  // different horizons, different shapes

  EXPECT_EQ(service.HandleLine("MODEL alpha " + line), want_alpha);
  EXPECT_EQ(service.HandleLine("MODEL beta " + line), want_beta);
  // No prefix routes to the default model.
  EXPECT_EQ(service.HandleLine(line), want_alpha);

  const std::string unknown = service.HandleLine("MODEL ghost " + line);
  EXPECT_EQ(unknown.rfind("ERROR NotFound", 0), 0u) << unknown;

  obs::JsonValue list;
  ASSERT_TRUE(obs::JsonParse(service.HandleLine("LIST"), &list));
  ASSERT_TRUE(list.is_object());
  EXPECT_EQ(list.Find("default")->str, "alpha");
  ASSERT_TRUE(list.Find("models")->is_array());
  EXPECT_EQ(list.Find("models")->array.size(), 2u);

  obs::JsonValue stats;
  ASSERT_TRUE(obs::JsonParse(service.HandleLine("STATS"), &stats));
  const obs::JsonValue* models = stats.Find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_NE(models->Find("alpha"), nullptr);
  EXPECT_EQ(models->Find("beta")->Find("version")->number, 2.0);
  EXPECT_GE(models->Find("alpha")->Find("requests_total")->number, 2.0);

  // RELOAD arity and target errors.
  const std::string bad_arity = service.HandleLine("RELOAD alpha");
  EXPECT_EQ(bad_arity.rfind("ERROR InvalidArgument", 0), 0u) << bad_arity;
  const std::string bad_target =
      service.HandleLine("RELOAD ghost some.msdckpt");
  EXPECT_EQ(bad_target.rfind("ERROR NotFound", 0), 0u) << bad_target;
}

TEST(ModelServiceTest, HandleLineAsyncAnswersExactlyOnce) {
  serve::ModelRegistry registry(FastBatcher());
  ASSERT_TRUE(registry.Add(MakeServed("alpha", 1, 11)).ok());
  registry.set_default_model("alpha");
  serve::ModelService service(&registry);
  const std::string line = serve::FormatTensorLine(RandomWindow(900));
  const std::string want =
      ExpectedReply(registry.Get("alpha").value()->session(), line);

  // Data line: answered later, on a batcher worker.
  std::promise<std::string> data_promise;
  std::atomic<int> data_calls{0};
  service.HandleLineAsync(line, [&](std::string reply) {
    data_calls.fetch_add(1);
    data_promise.set_value(std::move(reply));
  });
  EXPECT_EQ(data_promise.get_future().get(), want);
  EXPECT_EQ(data_calls.load(), 1);

  // Admin and admission failures answer inline on the calling thread.
  std::string admin_reply;
  service.HandleLineAsync("LIST",
                          [&](std::string reply) { admin_reply = reply; });
  EXPECT_NE(admin_reply.find("\"default\":\"alpha\""), std::string::npos);
  std::string notfound_reply;
  service.HandleLineAsync("MODEL ghost " + line,
                          [&](std::string reply) { notfound_reply = reply; });
  EXPECT_EQ(notfound_reply.rfind("ERROR NotFound", 0), 0u);
}

}  // namespace
}  // namespace msd
