// Cross-module integration tests: checkpointing a trained MSD-Mixer, CSV
// round trips through the imputation pipeline, and trainer/evaluator
// interactions that single-module suites cannot cover.
#include <cmath>

#include <gtest/gtest.h>

#include "core/msd_mixer.h"
#include "data/csv.h"
#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "tasks/experiments.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

Tensor SmallSeasonalSeries(int64_t channels, int64_t length, uint64_t seed) {
  SeriesConfig config;
  config.length = length;
  config.seed = seed;
  config.channel_mix = 0.2;
  for (int64_t c = 0; c < channels; ++c) {
    ChannelSpec spec;
    spec.seasonals = {{12.0, 1.0, 0.4 * static_cast<double>(c), 1}};
    spec.ar_coeff = 0.4;
    spec.noise_sigma = 0.15;
    config.channels.push_back(spec);
  }
  return GenerateSeries(config);
}

MsdMixerConfig TinyForecastConfig() {
  MsdMixerConfig config;
  config.input_length = 36;
  config.channels = 2;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 12;
  return config;
}

TEST(IntegrationTest, TrainedMixerSurvivesCheckpointRoundTrip) {
  Tensor series = SmallSeasonalSeries(2, 600, 4);
  ForecastExperimentConfig experiment;
  experiment.lookback = 36;
  experiment.horizon = 12;
  experiment.train_stride = 3;
  experiment.eval_stride = 6;
  experiment.trainer.epochs = 2;
  experiment.trainer.batch_size = 16;
  experiment.trainer.max_batches_per_epoch = 10;

  Rng rng(1);
  MsdMixerConfig mc = TinyForecastConfig();
  MsdMixer original(mc, rng);
  MsdMixerTaskModel model(&original, 0.3f);
  RunForecastExperiment(model, series, experiment);

  const std::string path = ::testing::TempDir() + "/mixer_integration.ckpt";
  ASSERT_TRUE(SaveCheckpoint(original, path).ok());

  Rng rng2(777);
  MsdMixer restored(mc, rng2);
  Status status = LoadCheckpoint(restored, path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The restored model must produce bit-identical predictions.
  NoGradGuard guard;
  original.SetTraining(false);
  restored.SetTraining(false);
  Rng data_rng(9);
  Variable x(Tensor::RandNormal({2, 2, 36}, 0, 1, data_rng));
  EXPECT_TRUE(AllClose(original.Run(x).prediction.value(),
                       restored.Run(x).prediction.value(), 0.0f, 0.0f));
}

TEST(IntegrationTest, CsvRoundTripFeedsForecastPipeline) {
  Tensor series = SmallSeasonalSeries(3, 400, 6);
  const std::string path = ::testing::TempDir() + "/pipeline.csv";
  ASSERT_TRUE(WriteCsvSeries(series, {"a", "b", "c"}, path).ok());
  auto loaded = ReadCsvSeries(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(AllClose(loaded.value().values, series, 1e-3f, 1e-3f));

  // Loaded data must flow through the experiment driver unchanged.
  Rng rng(2);
  MsdMixerConfig mc = TinyForecastConfig();
  mc.channels = 3;
  MsdMixer mixer(mc, rng);
  MsdMixerTaskModel model(&mixer, 0.3f);
  ForecastExperimentConfig experiment;
  experiment.lookback = 36;
  experiment.horizon = 12;
  experiment.train_stride = 4;
  experiment.eval_stride = 8;
  experiment.trainer.epochs = 1;
  experiment.trainer.batch_size = 16;
  experiment.trainer.max_batches_per_epoch = 5;
  RegressionScores scores =
      RunForecastExperiment(model, loaded.value().values, experiment);
  EXPECT_TRUE(std::isfinite(scores.mse));
  EXPECT_GT(scores.mse, 0.0);
}

TEST(IntegrationTest, InstanceNormImprovesShiftedWindows) {
  // Train two identical mixers (with/without instance norm) on a series with
  // a strong trend so test windows sit at unseen levels; instance norm must
  // not be worse.
  SeriesConfig config;
  config.length = 700;
  config.seed = 11;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec spec;
    spec.seasonals = {{12.0, 1.0, 0.3 * c, 1}};
    spec.trend_slope = 0.01;  // strong drift
    spec.noise_sigma = 0.1;
    config.channels.push_back(spec);
  }
  Tensor series = GenerateSeries(config);

  ForecastExperimentConfig experiment;
  experiment.lookback = 36;
  experiment.horizon = 12;
  experiment.train_stride = 3;
  experiment.eval_stride = 6;
  experiment.trainer.epochs = 3;
  experiment.trainer.batch_size = 16;
  experiment.trainer.max_batches_per_epoch = 12;

  auto run = [&](bool instance_norm) {
    Rng rng(3);
    MsdMixerConfig mc = TinyForecastConfig();
    mc.use_instance_norm = instance_norm;
    MsdMixer mixer(mc, rng);
    MsdMixerTaskModel model(&mixer, 0.3f);
    return RunForecastExperiment(model, series, experiment).mse;
  };
  const double with_norm = run(true);
  const double without_norm = run(false);
  EXPECT_LT(with_norm, without_norm * 1.1);
}

TEST(IntegrationTest, ImputationTaskLossTargetsMaskedPositionsOnly) {
  // A model that is perfect on observed positions but wrong on masked ones
  // must incur the full masked error.
  Tensor clean({1, 1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor masked({1, 1, 4}, {1.0f, 0.0f, 3.0f, 0.0f});
  Batch batch{masked, clean};
  // Prediction: copies observed, fills masked with 0 -> error 2^2 and 4^2.
  Variable pred(masked.Clone());
  EXPECT_NEAR(ImputationTaskLoss(pred, batch).item(), (4.0 + 16.0) / 2.0,
              1e-5);
}

TEST(IntegrationTest, BenchScaleEnvRespected) {
  // Guard against regressions in the bench scaling hook used by all bench
  // binaries (documented in README).
  // Not using bench_util.h directly (bench/ is not a library); replicate the
  // contract: MSD_BENCH_SCALE multiplies epochs.
  setenv("MSD_BENCH_SCALE", "2.5", 1);
  const char* env = std::getenv("MSD_BENCH_SCALE");
  ASSERT_NE(env, nullptr);
  EXPECT_NEAR(std::atof(env), 2.5, 1e-9);
  unsetenv("MSD_BENCH_SCALE");
}

}  // namespace
}  // namespace msd
