// Tests for the PatchTST-style and N-HiTS-style baselines.
#include "baselines/patchtst.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/nhits.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(PatchTstTest, OutputShapeAndPatchCount) {
  Rng rng(1);
  PatchTstConfig config;
  config.input_length = 96;
  config.horizon = 24;
  config.patch_length = 16;
  config.stride = 8;
  PatchTst model(config, rng);
  EXPECT_EQ(model.num_patches(), (96 - 16) / 8 + 1);
  Variable x(Tensor::RandNormal({2, 5, 96}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 5, 24}));
}

TEST(PatchTstTest, GradientsReachAllParameters) {
  Rng rng(2);
  PatchTstConfig config;
  config.input_length = 32;
  config.horizon = 8;
  config.patch_length = 8;
  config.stride = 4;
  config.model_dim = 16;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.num_blocks = 1;
  PatchTst model(config, rng);
  Variable x(Tensor::RandNormal({2, 3, 32}, 0, 1, rng));
  SumAll(Square(model.Forward(x))).Backward();
  for (const Variable& p : model.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(PatchTstTest, RevInMakesModelShiftEquivariant) {
  // With RevIN, adding a constant offset to the input shifts the forecast by
  // the same constant (to numerical precision).
  Rng rng(3);
  PatchTstConfig config;
  config.input_length = 32;
  config.horizon = 8;
  config.patch_length = 8;
  config.stride = 8;
  config.model_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 1;
  config.use_revin = true;
  PatchTst model(config, rng);
  model.SetTraining(false);
  Variable x(Tensor::RandNormal({1, 2, 32}, 0, 1, rng));
  Tensor base = model.Forward(x).value();
  Variable shifted(AddScalar(x.value(), 100.0f));
  Tensor moved = model.Forward(shifted).value();
  EXPECT_TRUE(AllClose(AddScalar(base, 100.0f), moved, 1e-2f, 1e-3f));
}

TEST(PatchTstTest, ChannelIndependence) {
  // Channel-independent design: changing channel 1's values must not change
  // channel 0's forecast.
  Rng rng(4);
  PatchTstConfig config;
  config.input_length = 32;
  config.horizon = 8;
  config.patch_length = 8;
  config.stride = 8;
  config.model_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 1;
  PatchTst model(config, rng);
  model.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, 2, 32}, 0, 1, rng);
  Tensor y = model.Forward(Variable(x)).value();
  Tensor x2 = x.Clone();
  for (int64_t t = 0; t < 32; ++t) x2.set({0, 1, t}, 9.0f + t);
  Tensor y2 = model.Forward(Variable(x2)).value();
  EXPECT_TRUE(AllClose(Slice(y, 1, 0, 1), Slice(y2, 1, 0, 1), 1e-5f, 1e-5f));
}

TEST(PatchTstTest, LearnsSeasonalPattern) {
  Rng rng(5);
  PatchTstConfig config;
  config.input_length = 48;
  config.horizon = 12;
  config.patch_length = 12;
  config.stride = 6;
  config.model_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 1;
  PatchTst model(config, rng);
  Adam opt(model.Parameters(), 2e-3f);
  float last = 1e9f;
  for (int step = 0; step < 120; ++step) {
    // Sinusoids with random phases; target continues the wave.
    Tensor x({8, 1, 48});
    Tensor y({8, 1, 12});
    Rng data_rng(1000 + step);
    for (int64_t b = 0; b < 8; ++b) {
      const float phase = data_rng.Uniform(0.0f, 6.28f);
      for (int64_t t = 0; t < 48; ++t) {
        x.set({b, 0, t}, std::sin(2.0f * 3.14159265f * t / 12.0f + phase));
      }
      for (int64_t t = 0; t < 12; ++t) {
        y.set({b, 0, t},
              std::sin(2.0f * 3.14159265f * (48 + t) / 12.0f + phase));
      }
    }
    opt.ZeroGrad();
    Variable loss =
        MeanAll(Square(Sub(model.Forward(Variable(x)), Variable(y))));
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, 0.1f);  // variance of the wave is 0.5
}

// ---- N-HiTS -------------------------------------------------------------------

TEST(NHitsTest, OutputShape) {
  Rng rng(6);
  NHits model(96, 24, rng, {8, 4, 1});
  Variable x(Tensor::RandNormal({2, 3, 96}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 3, 24}));
}

TEST(NHitsTest, OddHorizonAndPoolsStillShapeCorrect) {
  Rng rng(7);
  NHits model(50, 13, rng, {7, 3, 1});
  Variable x(Tensor::RandNormal({1, 2, 50}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{1, 2, 13}));
}

TEST(NHitsTest, GradientsReachAllParameters) {
  Rng rng(8);
  NHits model(48, 12, rng, {4, 2, 1});
  Variable x(Tensor::RandNormal({2, 1, 48}, 0, 1, rng));
  SumAll(Square(model.Forward(x))).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(NHitsTest, FitsTrendPlusSeason) {
  Rng rng(9);
  NHits model(48, 12, rng, {6, 2, 1}, 64);
  Adam opt(model.Parameters(), 3e-3f);
  float last = 1e9f;
  for (int step = 0; step < 200; ++step) {
    Tensor x({8, 1, 48});
    Tensor y({8, 1, 12});
    Rng data_rng(2000 + step);
    for (int64_t b = 0; b < 8; ++b) {
      const float slope = data_rng.Uniform(-0.02f, 0.02f);
      const float phase = data_rng.Uniform(0.0f, 6.28f);
      auto value = [&](int64_t t) {
        return slope * t +
               0.7f * std::sin(2.0f * 3.14159265f * t / 12.0f + phase);
      };
      for (int64_t t = 0; t < 48; ++t) x.set({b, 0, t}, value(t));
      for (int64_t t = 0; t < 12; ++t) y.set({b, 0, t}, value(48 + t));
    }
    opt.ZeroGrad();
    Variable loss =
        MeanAll(Square(Sub(model.Forward(Variable(x)), Variable(y))));
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, 0.12f);
}

}  // namespace
}  // namespace msd
