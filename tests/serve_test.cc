// Serving subsystem tests: frozen-session identity with the training
// pipeline, batch-composition invariance, micro-batcher contracts
// (backpressure, timeout, cancellation), and the no-tape-growth regression
// for inference paths. See docs/SERVING.md.
#include "serve/server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/series_builder.h"
#include "nn/serialize.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/ring.h"
#include "runtime/parallel.h"
#include "serve/trace.h"
#include "tasks/pipeline.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// This suite asserts fp32 identities (session == pipeline, batch-composition
// invariance across plans). Pin the int8 quantization pass off so a
// harness-level MSD_QUANT=1 sweep cannot change which plans quantize; the
// quantized contracts live in tests/quant_plan_test.cc.
const bool kQuantPinnedOff = [] {
  ::setenv("MSD_QUANT", "0", /*overwrite=*/1);
  return true;
}();

// Parallel ctest runs each test as its own process in a shared temp
// directory, so paths must be pid-unique or concurrent tests truncate each
// other's checkpoints mid-read.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serve_test_" + std::to_string(::getpid()) +
         "_" + name;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

MsdMixerConfig SmallConfig(TaskType task) {
  MsdMixerConfig config;
  config.input_length = 32;
  config.channels = 2;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = 8;
  config.num_classes = 3;
  return config;
}

// Random-init mixer -> checkpoint -> session, no training involved.
// `synthetic_compute_us` pads every forward with a busy-spin so timing tests
// can make compute dominate scheduling noise.
std::unique_ptr<serve::InferenceSession> MakeSession(
    TaskType task, int64_t max_batch = 8, const std::string& tag = "s",
    int64_t synthetic_compute_us = 0) {
  MsdMixerConfig config = SmallConfig(task);
  Rng rng(17);
  MsdMixer mixer(config, rng);
  const std::string path = TempPath("serve_" + tag + ".msdckpt");
  EXPECT_TRUE(SaveCheckpoint(mixer, path).ok());
  serve::InferenceSessionConfig sc;
  sc.model = config;
  sc.max_batch = max_batch;
  sc.synthetic_compute_us = synthetic_compute_us;
  auto session = serve::InferenceSession::Create(sc, path);
  std::remove(path.c_str());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

Tensor RandomWindow(uint64_t seed, int64_t channels = 2, int64_t length = 32) {
  Rng rng(seed);
  return Tensor::RandNormal({channels, length}, 0.0f, 1.0f, rng);
}

TEST(InferenceSessionTest, BatchRowsMatchSingleRequests) {
  auto session = MakeSession(TaskType::kForecast);
  std::vector<Tensor> windows;
  for (uint64_t s = 0; s < 5; ++s) windows.push_back(RandomWindow(100 + s));
  auto batched = session->PredictBatch(Stack(windows));
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < windows.size(); ++i) {
    auto single = session->Predict(windows[i]);
    ASSERT_TRUE(single.ok());
    Tensor row = Slice(batched.value(), 0, static_cast<int64_t>(i), 1);
    Shape squeezed(row.shape().begin() + 1, row.shape().end());
    EXPECT_TRUE(BitIdentical(row.Reshape(std::move(squeezed)), single.value()))
        << "row " << i;
  }
}

TEST(InferenceSessionTest, RejectsBadShapesAndOversizedBatches) {
  auto session = MakeSession(TaskType::kForecast, /*max_batch=*/4);
  EXPECT_FALSE(session->Predict(Tensor::Zeros({2, 31})).ok());
  EXPECT_FALSE(session->Predict(Tensor::Zeros({3, 32})).ok());
  EXPECT_FALSE(session->PredictBatch(Tensor::Zeros({5, 2, 32})).ok());
  EXPECT_FALSE(session->PredictBatch(Tensor::Zeros({2, 32})).ok());
  EXPECT_TRUE(session->PredictBatch(Tensor::Zeros({4, 2, 32})).ok());
}

TEST(InferenceSessionTest, ClassificationAndReconstructionHeads) {
  auto classifier = MakeSession(TaskType::kClassification, 8, "cls");
  auto logits = classifier->Predict(RandomWindow(7));
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(logits.value().shape(), (Shape{3}));
  EXPECT_FALSE(classifier->AnomalyScores(Tensor::Zeros({2, 2, 32})).ok());

  auto reconstructor = MakeSession(TaskType::kReconstruction, 8, "rec");
  auto recon = reconstructor->Predict(RandomWindow(8));
  ASSERT_TRUE(recon.ok());
  EXPECT_EQ(recon.value().shape(), (Shape{2, 32}));
  auto scores = reconstructor->AnomalyScores(Tensor::Zeros({3, 2, 32}));
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores.value().shape(), (Shape{3}));
}

TEST(InferenceSessionTest, PredictRecordsNoAutogradTape) {
  // Regression: the serving path must never grow the autograd tape. The
  // nodes_recorded counter counts every recorded op node; it must be flat
  // across any number of Predicts...
  auto session = MakeSession(TaskType::kForecast);
  const Tensor window = RandomWindow(5);
  ASSERT_TRUE(session->Predict(window).ok());  // settle pools/lazy statics
  auto& counter =
      obs::MetricsRegistry::Global().GetCounter("autograd/nodes_recorded");
  const int64_t before = counter.value();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(session->Predict(window).ok());
  EXPECT_EQ(counter.value(), before);

  // ...and a training-mode forward over the same architecture must move it,
  // proving the counter actually observes tape construction.
  MsdMixerConfig config = SmallConfig(TaskType::kForecast);
  Rng rng(3);
  MsdMixer mixer(config, rng);
  mixer.SetTraining(true);
  (void)mixer.Run(Variable(window.Reshape({1, 2, 32}), /*requires_grad=*/true));
  EXPECT_GT(counter.value(), before);
}

TEST(ServeIdentityTest, SessionMatchesLoadedPipelineAcrossThreadCounts) {
  // Train once, checkpoint, and require the serving path to reproduce the
  // reloaded pipeline bit-for-bit — single-threaded and with the pool.
  SeriesConfig series_config;
  series_config.length = 500;
  series_config.seed = 31;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec channel;
    channel.level = 5.0 + c;
    channel.seasonals = {{12.0, 1.5, 0.3 * c, 1}};
    channel.noise_sigma = 0.1;
    series_config.channels.push_back(channel);
  }
  const Tensor series = GenerateSeries(series_config);

  ForecastPipelineConfig pc;
  pc.lookback = 36;
  pc.horizon = 12;
  pc.model_dim = 8;
  pc.hidden_dim = 16;
  pc.trainer.epochs = 2;
  pc.trainer.batch_size = 16;
  pc.trainer.max_batches_per_epoch = 8;
  pc.trainer.early_stop_patience = 0;
  ForecastPipeline pipeline(pc, /*seed=*/3);
  pipeline.Fit(series);

  const std::string ckpt = TempPath("serve_identity.msdckpt");
  ASSERT_TRUE(pipeline.Save(ckpt).ok());
  ASSERT_TRUE(pipeline.Load(ckpt).ok());  // reference = checkpointed stats

  serve::ForecastSessionOptions options;
  options.lookback = pc.lookback;
  options.horizon = pc.horizon;
  options.model_dim = pc.model_dim;
  options.hidden_dim = pc.hidden_dim;
  auto session = serve::CreateForecastSession(ckpt, options);
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".meta").c_str());
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  for (int64_t threads : {int64_t{1}, int64_t{4}}) {
    runtime::ScopedThreads scoped(threads);
    for (int64_t offset : {int64_t{0}, int64_t{100}, int64_t{300}}) {
      const Tensor window = Slice(series, 1, offset, pc.lookback);
      const Tensor want = pipeline.Predict(window);
      auto got = session.value()->Predict(window);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(BitIdentical(got.value(), want))
          << "threads=" << threads << " offset=" << offset;
    }
  }
}

TEST(MicroBatcherTest, BatchedResultsMatchDirectSession) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  config.max_batch = 4;
  config.max_delay_us = 500;
  config.num_workers = 2;
  serve::MicroBatcher batcher(session.get(), config);
  batcher.Start();

  std::vector<Tensor> windows;
  std::vector<serve::ResultFuture> futures(12);
  for (uint64_t s = 0; s < futures.size(); ++s) {
    windows.push_back(RandomWindow(200 + s));
    ASSERT_TRUE(batcher.Submit(windows.back(), &futures[s]).ok());
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<Tensor> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want = session->Predict(windows[i]);
    ASSERT_TRUE(want.ok());
    EXPECT_TRUE(BitIdentical(got.value(), want.value())) << "request " << i;
  }
  batcher.Stop();
}

TEST(MicroBatcherTest, FullQueueRejectsWithResourceExhaustedThenDrains) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  config.queue_capacity = 4;
  config.max_batch = 2;
  const Tensor window = RandomWindow(1);

  serve::MicroBatcher batcher(session.get(), config);
  // Not started: the queue can only fill.
  std::vector<serve::ResultFuture> admitted(config.queue_capacity);
  for (auto& f : admitted) {
    ASSERT_TRUE(batcher.Submit(window, &f).ok());
  }
  serve::ResultFuture overflow;
  Status rejected = batcher.Submit(window, &overflow);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  // Backpressure is not drop: everything admitted completes once workers
  // start, and the queue accepts new work again.
  batcher.Start();
  for (auto& f : admitted) {
    EXPECT_TRUE(f.get().ok());
  }
  serve::ResultFuture after;
  ASSERT_TRUE(batcher.Submit(window, &after).ok());
  EXPECT_TRUE(after.get().ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, ExpiredRequestsResolveWithDeadlineExceeded) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  serve::MicroBatcher batcher(session.get(), config);
  const Tensor window = RandomWindow(2);

  // Deterministic expiry: enqueue with a 1ms deadline while no worker is
  // running, let it lapse, then start the workers.
  serve::ResultFuture expired;
  ASSERT_TRUE(batcher.Submit(window, &expired, /*timeout_us=*/1000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.Start();
  EXPECT_EQ(expired.get().status().code(), StatusCode::kDeadlineExceeded);

  // A request with a generous deadline still succeeds.
  serve::ResultFuture live;
  ASSERT_TRUE(batcher.Submit(window, &live, /*timeout_us=*/5000000).ok());
  EXPECT_TRUE(live.get().ok());
  batcher.Stop();
}

TEST(MicroBatcherTest, StopCancelsPendingAndRejectsNewWork) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  serve::MicroBatcher batcher(session.get(), config);
  const Tensor window = RandomWindow(3);

  serve::ResultFuture pending;
  ASSERT_TRUE(batcher.Submit(window, &pending).ok());
  batcher.Stop();  // never Start()ed: the queued request must not be lost
  EXPECT_EQ(pending.get().status().code(), StatusCode::kCancelled);

  serve::ResultFuture rejected;
  EXPECT_EQ(batcher.Submit(window, &rejected).code(), StatusCode::kCancelled);
  batcher.Stop();  // idempotent
}

TEST(MicroBatcherTest, SubmitValidatesWindowShape) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  serve::MicroBatcher batcher(session.get(), config);
  serve::ResultFuture future;
  EXPECT_EQ(batcher.Submit(Tensor::Zeros({2, 31}), &future).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(batcher.Submit(Tensor::Zeros({1, 2, 32}), &future).code(),
            StatusCode::kInvalidArgument);
  batcher.Stop();
}

TEST(ServerLoopTest, TextProtocolRoundTrip) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  config.max_delay_us = 200;
  serve::ServerLoop server(session.get(), config);
  server.Start();

  const Tensor window = RandomWindow(11);
  const std::string reply =
      server.HandleLine(serve::FormatTensorLine(window));
  ASSERT_NE(reply.rfind("ERROR", 0), 0u) << reply;
  auto parsed = serve::ParseWindowLine(reply, 2, 8);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto want = session->Predict(window);
  ASSERT_TRUE(want.ok());
  // %.6g text round-trip, so approximate comparison only.
  EXPECT_TRUE(AllClose(parsed.value(), want.value(), 1e-3f, 1e-3f));

  EXPECT_EQ(server.HandleLine("1,2,bogus").rfind("ERROR", 0), 0u);
  EXPECT_EQ(server.HandleLine("1,2;3").rfind("ERROR", 0), 0u);  // ragged
  EXPECT_EQ(server.HandleLine("").rfind("ERROR", 0), 0u);
  server.Stop();
}

TEST(ServerLoopTest, ParseAndFormatAreInverses) {
  auto parsed = serve::ParseWindowLine("1,2.5,-3;4,5e-2,6", 0, 0);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(parsed.value().at({1, 1}), 0.05f);
  const std::string rendered = serve::FormatTensorLine(parsed.value());
  auto reparsed = serve::ParseWindowLine(rendered, 2, 3);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(BitIdentical(parsed.value(), reparsed.value()));
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(MicroBatcherTest, TimingDecompositionSeparatesQueueFromCompute) {
  // A slow model makes the phases unambiguous: with one worker mid-compute
  // (50ms spin), two requests submitted behind it must sit in the queue for
  // at least the remaining compute time — far beyond the 5ms coalescing
  // delay — while their own compute span stays >= the spin length. Sampling
  // every request lets the ring report the per-phase spans directly.
  obs::TraceRing& ring = obs::TraceRing::Global();
  const int64_t old_sample = ring.sample_every();
  ring.SetSampleEvery(1);

  constexpr int64_t kComputeUs = 50000;
  auto session = MakeSession(TaskType::kForecast, /*max_batch=*/8, "slow",
                             /*synthetic_compute_us=*/kComputeUs);
  serve::MicroBatcherConfig config;
  config.max_batch = 2;
  config.max_delay_us = 5000;
  config.num_workers = 1;
  serve::MicroBatcher batcher(session.get(), config);
  batcher.Start();
  // Session creation runs a warmup forward that records its own compute
  // span; drop it so the snapshot below holds exactly our three requests.
  ring.Clear();

  const int64_t queue_before = serve::Instruments().queue_us.count();
  const int64_t compute_before = serve::Instruments().compute_us.count();
  const int64_t e2e_before = serve::Instruments().e2e_us.count();

  serve::ResultFuture first;
  ASSERT_TRUE(batcher.Submit(RandomWindow(400), &first).ok());
  // Let the worker pick up the first request (max_delay 5ms) and enter its
  // 50ms compute before lining up the coalesced pair behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  serve::ResultFuture second;
  serve::ResultFuture third;
  ASSERT_TRUE(batcher.Submit(RandomWindow(401), &second).ok());
  ASSERT_TRUE(batcher.Submit(RandomWindow(402), &third).ok());
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  ASSERT_TRUE(third.get().ok());
  batcher.Stop();

  // Every request observes each phase exactly once.
  EXPECT_EQ(serve::Instruments().queue_us.count(), queue_before + 3);
  EXPECT_EQ(serve::Instruments().compute_us.count(), compute_before + 3);
  EXPECT_EQ(serve::Instruments().e2e_us.count(), e2e_before + 3);

  // Group ring spans by request: 3 sampled requests x 3 phases.
  std::map<int64_t, std::map<std::string, int64_t>> spans;
  for (const obs::TraceSpan& span : ring.Snapshot()) {
    spans[span.request_id][span.name] = span.dur_us;
  }
  ring.SetSampleEvery(old_sample);
  ASSERT_EQ(spans.size(), 3u);
  const int64_t first_id = spans.begin()->first;
  for (const auto& [id, phases] : spans) {
    ASSERT_EQ(phases.size(), 3u) << "request " << id;
    // The spin runs inside the forward, so compute >= the configured pad.
    EXPECT_GE(phases.at("compute"), kComputeUs - 1000) << "request " << id;
    if (id == first_id) continue;
    // The coalesced pair waited out the head request's compute: queue-wait
    // must dwarf the coalescing delay, and the decomposition must attribute
    // that wait to the queue phase, not to batch assembly.
    EXPECT_GE(phases.at("queue"), config.max_delay_us) << "request " << id;
    EXPECT_LT(phases.at("batch_assembly"), kComputeUs) << "request " << id;
  }
}

TEST(MicroBatcherTest, DeadlineMissCounterTracksExpiredRequests) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  serve::MicroBatcher batcher(session.get(), config);
  const Tensor window = RandomWindow(4);
  const int64_t misses_before = serve::Instruments().deadline_miss.value();

  // Same deterministic-expiry setup as ExpiredRequestsResolveWithDeadline-
  // Exceeded: the lapsed request must bump serve/deadline_miss exactly once,
  // and the successful one must not move it.
  serve::ResultFuture expired;
  ASSERT_TRUE(batcher.Submit(window, &expired, /*timeout_us=*/1000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.Start();
  ASSERT_EQ(expired.get().status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(serve::Instruments().deadline_miss.value(), misses_before + 1);

  serve::ResultFuture live;
  ASSERT_TRUE(batcher.Submit(window, &live, /*timeout_us=*/5000000).ok());
  ASSERT_TRUE(live.get().ok());
  batcher.Stop();
  EXPECT_EQ(serve::Instruments().deadline_miss.value(), misses_before + 1);
}

TEST(ServerLoopTest, StatsCommandReportsCountersAndQuantiles) {
  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  config.max_delay_us = 200;
  serve::ServerLoop server(session.get(), config);
  server.Start();
  ASSERT_EQ(server.HandleLine(serve::FormatTensorLine(RandomWindow(12)))
                .rfind("ERROR", 0),
            std::string::npos);

  const std::string reply = server.HandleLine("STATS");
  obs::JsonValue doc;
  ASSERT_TRUE(obs::JsonParse(reply, &doc)) << reply;
  const obs::JsonValue* requests = doc.Find("requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->number, 1.0);
  ASSERT_NE(doc.Find("deadline_miss"), nullptr);
  ASSERT_NE(doc.Find("inflight"), nullptr);
  for (const char* name :
       {"queue_us", "batch_assembly_us", "compute_us", "e2e_us"}) {
    const obs::JsonValue* hist = doc.Find(name);
    ASSERT_NE(hist, nullptr) << name;
    ASSERT_NE(hist->Find("count"), nullptr) << name;
    ASSERT_NE(hist->Find("p50"), nullptr) << name;
    ASSERT_NE(hist->Find("p99"), nullptr) << name;
    EXPECT_GE(hist->Find("p99")->number, hist->Find("p50")->number) << name;
  }
  // The command itself is whitespace-tolerant.
  EXPECT_EQ(server.HandleLine("  STATS  ").rfind("ERROR", 0),
            std::string::npos);
  server.Stop();
}

TEST(ServerLoopTest, TraceCommandRequiresExporterAndWritesChromeJson) {
  obs::TraceRing& ring = obs::TraceRing::Global();
  const int64_t old_sample = ring.sample_every();
  ring.SetSampleEvery(1);
  ring.Clear();

  auto session = MakeSession(TaskType::kForecast);
  serve::MicroBatcherConfig config;
  config.max_delay_us = 200;
  serve::ServerLoop server(session.get(), config);
  server.Start();

  // Without a wired exporter there is no thread allowed to do file I/O.
  EXPECT_EQ(server.HandleLine("TRACE /tmp/never_written.json").rfind("ERROR", 0),
            0u);

  obs::TelemetryExporter exporter(obs::TelemetryExporterOptions{});
  ASSERT_TRUE(exporter.Start());
  server.SetExporter(&exporter);
  EXPECT_EQ(server.HandleLine("TRACE").rfind("ERROR", 0), 0u);  // path missing

  ASSERT_EQ(server.HandleLine(serve::FormatTensorLine(RandomWindow(13)))
                .rfind("ERROR", 0),
            std::string::npos);
  const std::string dump = TempPath("trace_dump.json");
  EXPECT_EQ(server.HandleLine("TRACE " + dump).rfind("OK", 0), 0u);
  server.Stop();
  exporter.Stop();
  ring.SetSampleEvery(old_sample);

  obs::JsonValue doc;
  ASSERT_TRUE(obs::JsonParse(ReadWholeFile(dump), &doc));
  const obs::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<std::string> names;
  for (const obs::JsonValue& event : events->array) {
    ASSERT_NE(event.Find("name"), nullptr);
    names.push_back(event.Find("name")->str);
  }
  for (const char* phase : {"queue", "batch_assembly", "compute"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << phase;
  }
  std::remove(dump.c_str());
}

}  // namespace
}  // namespace msd
