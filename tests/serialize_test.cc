// Checkpoint round-trip coverage for every model family, plus corrupt-file
// hardening of LoadCheckpoint (bounds-checked length fields, PR: serving).
#include "nn/serialize.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/dlinear.h"
#include "baselines/lightts.h"
#include "baselines/mlp_autoencoder.h"
#include "baselines/mlp_classifier.h"
#include "baselines/nbeats.h"
#include "baselines/nhits.h"
#include "baselines/patchtst.h"
#include "baselines/timesnet_lite.h"
#include "baselines/transformer_forecaster.h"
#include "core/msd_mixer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// Parallel ctest runs each test as its own process in a shared temp
// directory, so paths must be pid-unique or concurrent tests truncate each
// other's checkpoints mid-read.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serialize_test_" +
         std::to_string(::getpid()) + "_" + name;
}

Tensor EvalForward(Module& model, const Tensor& input) {
  NoGradGuard guard;
  model.SetTraining(false);
  return model.Forward(Variable(input)).value();
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// Save model A (seed 1), load into a differently-initialized model B
// (seed 99), and require bit-identical eval outputs on the same input.
// `make` builds the model from an Rng so both sides share the architecture;
// `run` runs one eval-mode forward (MsdMixer uses Run, baselines Forward).
template <typename MakeFn, typename RunFn>
void ExpectRoundTripWith(const std::string& tag, MakeFn make, RunFn run,
                         const Tensor& input) {
  Rng rng_a(1);
  auto model_a = make(rng_a);
  const Tensor out_a = run(*model_a, input);

  const std::string path = TempPath("roundtrip_" + tag + ".msdckpt");
  ASSERT_TRUE(SaveCheckpoint(*model_a, path).ok()) << tag;

  Rng rng_b(99);
  auto model_b = make(rng_b);
  // Different init: loading must actually overwrite the weights.
  ASSERT_FALSE(BitIdentical(out_a, run(*model_b, input))) << tag;
  ASSERT_TRUE(LoadCheckpoint(*model_b, path).ok()) << tag;
  EXPECT_TRUE(BitIdentical(out_a, run(*model_b, input))) << tag;
  std::remove(path.c_str());
}

Tensor EvalRunMixer(MsdMixer& mixer, const Tensor& input) {
  NoGradGuard guard;
  mixer.SetTraining(false);
  return mixer.Run(Variable(input)).prediction.value();
}

template <typename MakeFn>
void ExpectRoundTrip(const std::string& tag, MakeFn make, const Tensor& input) {
  ExpectRoundTripWith(
      tag, make,
      [](Module& model, const Tensor& in) { return EvalForward(model, in); },
      input);
}

template <typename MakeFn>
void ExpectMixerRoundTrip(const std::string& tag, MakeFn make,
                          const Tensor& input) {
  ExpectRoundTripWith(
      tag, make,
      [](MsdMixer& mixer, const Tensor& in) { return EvalRunMixer(mixer, in); },
      input);
}

Tensor DemoInput(int64_t batch = 2, int64_t channels = 3, int64_t length = 32,
                 uint64_t seed = 7) {
  Rng rng(seed);
  return Tensor::RandNormal({batch, channels, length}, 0.0f, 1.0f, rng);
}

MsdMixerConfig SmallMixerConfig(TaskType task) {
  MsdMixerConfig config;
  config.input_length = 32;
  config.channels = 3;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = task;
  config.horizon = 8;
  config.num_classes = 4;
  return config;
}

TEST(CheckpointRoundTripTest, MsdMixerEveryTaskHead) {
  const Tensor input = DemoInput();
  for (TaskType task : {TaskType::kForecast, TaskType::kClassification,
                        TaskType::kReconstruction}) {
    MsdMixerConfig config = SmallMixerConfig(task);
    ExpectMixerRoundTrip(
        "mixer_task" + std::to_string(static_cast<int>(task)),
        [&](Rng& rng) { return std::make_unique<MsdMixer>(config, rng); },
        input);
  }
}

TEST(CheckpointRoundTripTest, MsdMixerVariantConfigs) {
  const Tensor input = DemoInput();
  MsdMixerConfig pooled = SmallMixerConfig(TaskType::kClassification);
  pooled.pool_classification_head = true;
  ExpectMixerRoundTrip(
      "mixer_pooled",
      [&](Rng& rng) { return std::make_unique<MsdMixer>(pooled, rng); },
      input);

  MsdMixerConfig instance_norm = SmallMixerConfig(TaskType::kForecast);
  instance_norm.use_instance_norm = true;
  ExpectMixerRoundTrip(
      "mixer_instnorm",
      [&](Rng& rng) { return std::make_unique<MsdMixer>(instance_norm, rng); },
      input);
}

TEST(CheckpointRoundTripTest, ForecastBaselines) {
  const Tensor input = DemoInput();
  ExpectRoundTrip(
      "dlinear",
      [](Rng& rng) { return std::make_unique<DLinear>(32, 8, rng); }, input);
  ExpectRoundTrip(
      "linear",
      [](Rng& rng) { return std::make_unique<LinearForecaster>(32, 8, rng); },
      input);
  ExpectRoundTrip(
      "lightts",
      [](Rng& rng) { return std::make_unique<LightTs>(32, 8, rng); }, input);
  ExpectRoundTrip(
      "nbeats",
      [](Rng& rng) {
        return std::make_unique<NBeats>(32, 8, rng, /*num_blocks=*/2,
                                        /*hidden=*/16);
      },
      input);
  ExpectRoundTrip(
      "nhits",
      [](Rng& rng) {
        return std::make_unique<NHits>(32, 8, rng,
                                       std::vector<int64_t>{4, 2, 1},
                                       /*hidden=*/16);
      },
      input);

  PatchTstConfig patchtst;
  patchtst.input_length = 32;
  patchtst.horizon = 8;
  patchtst.patch_length = 8;
  patchtst.stride = 4;
  patchtst.model_dim = 8;
  patchtst.num_heads = 2;
  patchtst.ffn_dim = 16;
  patchtst.num_blocks = 1;
  ExpectRoundTrip(
      "patchtst",
      [&](Rng& rng) { return std::make_unique<PatchTst>(patchtst, rng); },
      input);

  Rng ref_rng(3);
  const Tensor reference = Tensor::RandNormal({3, 256}, 0.0f, 1.0f, ref_rng);
  ExpectRoundTrip(
      "timesnet",
      [&](Rng& rng) {
        return std::make_unique<TimesNetLite>(32, 8, 3, reference, rng,
                                              /*top_k=*/2, /*model_dim=*/8,
                                              /*hidden=*/16);
      },
      input);

  TransformerForecasterConfig transformer;
  transformer.input_length = 32;
  transformer.horizon = 8;
  transformer.model_dim = 8;
  transformer.num_heads = 2;
  transformer.ffn_dim = 16;
  transformer.num_blocks = 1;
  ExpectRoundTrip(
      "transformer",
      [&](Rng& rng) {
        return std::make_unique<TransformerForecaster>(transformer, 3, rng);
      },
      input);
}

TEST(CheckpointRoundTripTest, TaskBaselines) {
  const Tensor input = DemoInput();
  ExpectRoundTrip(
      "autoencoder",
      [](Rng& rng) {
        return std::make_unique<MlpAutoencoder>(3, 32, rng, /*bottleneck=*/8);
      },
      input);
  ExpectRoundTrip(
      "classifier",
      [](Rng& rng) {
        return std::make_unique<MlpClassifier>(3, 32, 4, rng, /*hidden=*/16);
      },
      input);
}

// ---- Corrupt / truncated checkpoint hardening -------------------------------

class CorruptCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MsdMixerConfig config = SmallMixerConfig(TaskType::kForecast);
    Rng rng(1);
    model_ = std::make_unique<MsdMixer>(config, rng);
    path_ = TempPath("corrupt.msdckpt");
    ASSERT_TRUE(SaveCheckpoint(*model_, path_).ok());
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes_.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes_.data(), 1, bytes_.size(), f), bytes_.size());
    std::fclose(f);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Writes `prefix` bytes of the pristine checkpoint (optionally with an
  // 8-byte field patched in at `patch_offset`) and expects a clean non-OK
  // load.
  void ExpectRejected(size_t prefix, size_t patch_offset = SIZE_MAX,
                      uint64_t patch_value = 0) {
    std::vector<unsigned char> mutated(bytes_.begin(),
                                       bytes_.begin() +
                                           static_cast<ptrdiff_t>(prefix));
    if (patch_offset != SIZE_MAX) {
      ASSERT_LE(patch_offset + sizeof(patch_value), mutated.size());
      std::memcpy(mutated.data() + patch_offset, &patch_value,
                  sizeof(patch_value));
    }
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // Skip the write entirely at prefix 0: an empty vector's data() may be
    // null, and fwrite's first argument is declared nonnull even for size 0.
    if (!mutated.empty()) {
      ASSERT_EQ(std::fwrite(mutated.data(), 1, mutated.size(), f),
                mutated.size());
    }
    std::fclose(f);
    Status status = LoadCheckpoint(*model_, path_);
    EXPECT_FALSE(status.ok())
        << "prefix=" << prefix << " patch_offset=" << patch_offset;
  }

  // Header layout: magic[8] | u32 version | u64 count | first entry...
  static constexpr size_t kCountOffset = 8 + sizeof(uint32_t);
  static constexpr size_t kFirstEntryOffset = kCountOffset + sizeof(uint64_t);

  std::unique_ptr<MsdMixer> model_;
  std::string path_;
  std::vector<unsigned char> bytes_;
};

TEST_F(CorruptCheckpointTest, TruncationAtEveryRegionIsRejected) {
  // A sweep of truncation points: inside the magic, header, first entry's
  // name/rank/dims, and inside tensor data. None may crash or succeed.
  const size_t sweep[] = {0,  4,  8,  10, kCountOffset, kFirstEntryOffset,
                          kFirstEntryOffset + 3, kFirstEntryOffset + 20,
                          bytes_.size() / 2, bytes_.size() - 1};
  for (size_t prefix : sweep) {
    ASSERT_LT(prefix, bytes_.size());
    ExpectRejected(prefix);
  }
}

TEST_F(CorruptCheckpointTest, HugeParameterCountIsRejected) {
  ExpectRejected(bytes_.size(), kCountOffset, uint64_t{1} << 60);
}

TEST_F(CorruptCheckpointTest, HugeNameLengthIsRejected) {
  // First entry starts with its u64 name_len.
  ExpectRejected(bytes_.size(), kFirstEntryOffset, uint64_t{1} << 60);
}

TEST_F(CorruptCheckpointTest, NameLengthBeyondFileIsRejected) {
  ExpectRejected(bytes_.size(), kFirstEntryOffset, bytes_.size() + 1);
}

TEST_F(CorruptCheckpointTest, HugeRankIsRejected) {
  // rank sits after name_len + the name itself.
  uint64_t name_len = 0;
  std::memcpy(&name_len, bytes_.data() + kFirstEntryOffset, sizeof(name_len));
  const size_t rank_offset =
      kFirstEntryOffset + sizeof(uint64_t) + static_cast<size_t>(name_len);
  ExpectRejected(bytes_.size(), rank_offset, uint64_t{1} << 32);
}

TEST_F(CorruptCheckpointTest, HugeDimensionIsRejected) {
  uint64_t name_len = 0;
  std::memcpy(&name_len, bytes_.data() + kFirstEntryOffset, sizeof(name_len));
  const size_t dim_offset = kFirstEntryOffset + sizeof(uint64_t) +
                            static_cast<size_t>(name_len) + sizeof(uint64_t);
  // Large but in-range dims whose product overflows the numel guard.
  ExpectRejected(bytes_.size(), dim_offset, uint64_t{1} << 39);
}

TEST_F(CorruptCheckpointTest, BadMagicAndVersionAreRejected) {
  ExpectRejected(bytes_.size(), 0, 0x4242424242424242ull);
  // Version field: patch 8 bytes spanning version+count low word is fine for
  // a rejection test, but patch the exact u32 via a full u64 overwrite at
  // offset 8 (version || count-low); the version check fires first.
  ExpectRejected(bytes_.size(), 8, 0xffffffffull);
}

TEST_F(CorruptCheckpointTest, PristineFileStillLoads) {
  // Sanity for the fixture itself: an unmodified byte-copy loads fine.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes_.data(), 1, bytes_.size(), f), bytes_.size());
  std::fclose(f);
  EXPECT_TRUE(LoadCheckpoint(*model_, path_).ok());
}

}  // namespace
}  // namespace msd
