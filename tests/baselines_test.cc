// Tests for the baseline models.
#include "baselines/dlinear.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/dtw.h"
#include "baselines/lightts.h"
#include "baselines/mlp_autoencoder.h"
#include "baselines/naive.h"
#include "baselines/nbeats.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(MovingAverageTest, ConstantSeriesUnchanged) {
  Variable x(Tensor::Full({1, 2, 20}, 3.0f));
  Variable ma = MovingAverage(x, 5);
  EXPECT_EQ(ma.shape(), x.shape());
  EXPECT_TRUE(AllClose(ma.value(), x.value(), 1e-5f, 1e-5f));
}

TEST(MovingAverageTest, SmoothsInteriorExactly) {
  Variable x(Tensor::Arange(9).Reshape({1, 1, 9}));
  Variable ma = MovingAverage(x, 3);
  // Interior element i is the mean of {i-1, i, i+1} = i.
  for (int64_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(ma.value().at({0, 0, i}), static_cast<float>(i), 1e-5f);
  }
  // Edges use replicate padding: mean of {0, 0, 1} = 1/3.
  EXPECT_NEAR(ma.value().at({0, 0, 0}), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(ma.value().at({0, 0, 8}), (7.0f + 8.0f + 8.0f) / 3.0f, 1e-5f);
}

TEST(MovingAverageTest, KernelOneIsIdentity) {
  Rng rng(1);
  Variable x(Tensor::RandNormal({1, 1, 10}, 0, 1, rng));
  EXPECT_TRUE(AllClose(MovingAverage(x, 1).value(), x.value(), 0.0f, 0.0f));
}

TEST(DLinearTest, OutputShapeAndGradients) {
  Rng rng(2);
  DLinear model(48, 24, rng);
  Variable x(Tensor::RandNormal({3, 5, 48}, 0, 1, rng));
  Variable y = model.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 5, 24}));
  SumAll(Square(y)).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(DLinearTest, LearnsLinearTrendExtrapolation) {
  // DLinear can represent y_t = x_last + slope * t exactly; verify it learns
  // to extrapolate ramps.
  Rng rng(3);
  DLinear model(16, 4, rng, /*kernel_size=*/5);
  std::vector<Variable> params = model.Parameters();
  for (int step = 0; step < 400; ++step) {
    // Random ramps: x_t = a * t + b.
    Tensor x({8, 1, 16});
    Tensor y({8, 1, 4});
    Rng data_rng(static_cast<uint64_t>(step) + 100);
    for (int64_t i = 0; i < 8; ++i) {
      const float a = data_rng.Uniform(-1.0f, 1.0f);
      const float b = data_rng.Uniform(-2.0f, 2.0f);
      for (int64_t t = 0; t < 16; ++t) x.set({i, 0, t}, a * t + b);
      for (int64_t t = 0; t < 4; ++t) y.set({i, 0, t}, a * (16 + t) + b);
    }
    for (Variable& p : params) p.ZeroGrad();
    Variable loss = MeanAll(Square(Sub(model.Forward(Variable(x)), Variable(y))));
    loss.Backward();
    for (Variable& p : params) {
      float* w = p.mutable_value().data();
      const float* g = p.grad().data();
      for (int64_t j = 0; j < p.numel(); ++j) w[j] -= 0.002f * g[j];
    }
  }
  // Evaluate on a fresh ramp.
  Tensor x({1, 1, 16});
  for (int64_t t = 0; t < 16; ++t) x.set({0, 0, t}, 0.5f * t + 1.0f);
  Tensor y = model.Forward(Variable(x)).value();
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(y.at({0, 0, t}), 0.5f * (16 + t) + 1.0f, 0.6f);
  }
}

TEST(LinearForecasterTest, ShapeAndGrad) {
  Rng rng(4);
  LinearForecaster model(32, 8, rng);
  Variable x(Tensor::RandNormal({2, 3, 32}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 3, 8}));
}

TEST(LightTsTest, ShapeWithDefaultChunk) {
  Rng rng(5);
  LightTs model(96, 24, rng);
  Variable x(Tensor::RandNormal({2, 4, 96}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 4, 24}));
}

TEST(LightTsTest, NonDivisibleLengthHandled) {
  Rng rng(6);
  LightTs model(50, 10, rng, /*chunk_size=*/8);
  Variable x(Tensor::RandNormal({1, 2, 50}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{1, 2, 10}));
}

TEST(NBeatsTest, ShapeAndGradients) {
  Rng rng(7);
  NBeats model(36, 6, rng, /*num_blocks=*/2, /*hidden=*/32);
  Variable x(Tensor::RandNormal({4, 1, 36}, 0, 1, rng));
  Variable y = model.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 1, 6}));
  SumAll(Square(y)).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(NaiveTest, RepeatsLastValue) {
  Tensor x({1, 2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor f = NaiveForecast(x, 3);
  EXPECT_TRUE(AllClose(f, Tensor({1, 2, 3}, {4, 4, 4, 40, 40, 40})));
}

TEST(SeasonalNaiveTest, RepeatsLastPeriod) {
  Tensor x({1, 1, 6}, {1, 2, 3, 4, 5, 6});
  Tensor f = SeasonalNaiveForecast(x, 5, 3);
  // Last period {4,5,6}, repeated cyclically.
  EXPECT_TRUE(AllClose(f, Tensor({1, 1, 5}, {4, 5, 6, 4, 5})));
}

TEST(SeasonalNaiveTest, FallsBackWhenPeriodTooLong) {
  Tensor x({1, 1, 4}, {1, 2, 3, 9});
  Tensor f = SeasonalNaiveForecast(x, 2, 10);
  EXPECT_TRUE(AllClose(f, Tensor({1, 1, 2}, {9, 9})));
}

TEST(MlpAutoencoderTest, ShapeAndOverfitsOneBatch) {
  Rng rng(8);
  MlpAutoencoder model(3, 20, rng, /*bottleneck=*/12);
  // Structured (low-rank) data: sinusoids with random phases, which a
  // bottleneck autoencoder can actually represent.
  Tensor x({4, 3, 20});
  for (int64_t b = 0; b < 4; ++b) {
    for (int64_t c = 0; c < 3; ++c) {
      const float phase = rng.Uniform(0.0f, 6.28f);
      for (int64_t t = 0; t < 20; ++t) {
        x.set({b, c, t}, std::sin(2.0f * static_cast<float>(M_PI) * t / 10.0f +
                                  phase));
      }
    }
  }
  std::vector<Variable> params = model.Parameters();
  float first = 0.0f;
  float last = 0.0f;
  Adam opt(params, 0.01f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Variable loss = MeanAll(Square(Sub(model.Forward(Variable(x)), Variable(x))));
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.25f);
}

// ---- DTW ---------------------------------------------------------------------

TEST(DtwTest, IdenticalSeriesZeroDistance) {
  Rng rng(9);
  Tensor a = Tensor::RandNormal({2, 30}, 0, 1, rng);
  EXPECT_NEAR(DtwDistance(a, a), 0.0, 1e-9);
}

TEST(DtwTest, SymmetricWithoutBand) {
  Rng rng(10);
  Tensor a = Tensor::RandNormal({2, 20}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({2, 25}, 0, 1, rng);
  EXPECT_NEAR(DtwDistance(a, b), DtwDistance(b, a), 1e-6);
}

TEST(DtwTest, InvariantToTimeWarp) {
  // A stretched copy of a series should be much closer under DTW than a
  // different signal.
  const int64_t n = 40;
  Tensor a({1, n});
  Tensor warped({1, n});
  Tensor other({1, n});
  for (int64_t t = 0; t < n; ++t) {
    const double u = static_cast<double>(t) / n;
    a.set({0, t}, std::sin(2 * M_PI * 2 * u));
    // Nonlinear time warp of the same sine.
    warped.set({0, t}, std::sin(2 * M_PI * 2 * (u * u * 0.7 + u * 0.3)));
    other.set({0, t}, std::cos(2 * M_PI * 5 * u));
  }
  EXPECT_LT(DtwDistance(a, warped), DtwDistance(a, other) * 0.5);
}

TEST(DtwTest, BandSpeedsUpButStaysAboveExact) {
  Rng rng(11);
  Tensor a = Tensor::RandNormal({1, 50}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({1, 50}, 0, 1, rng);
  // Constrained DTW cost is >= unconstrained cost.
  EXPECT_GE(DtwDistance(a, b, 3) + 1e-9, DtwDistance(a, b));
}

TEST(DtwKnnTest, ClassifiesCleanSinusoids) {
  // Two classes: slow vs fast sine with phase jitter.
  Rng rng(12);
  auto make = [&](double freq) {
    Tensor x({1, 48});
    const double phase = rng.NextDouble();
    for (int64_t t = 0; t < 48; ++t) {
      x.set({0, t}, std::sin(2 * M_PI * freq * t / 48.0 + phase) +
                        rng.Gaussian(0, 0.1f));
    }
    return x;
  };
  std::vector<Tensor> train_x;
  std::vector<int64_t> train_y;
  for (int i = 0; i < 10; ++i) {
    train_x.push_back(make(2.0));
    train_y.push_back(0);
    train_x.push_back(make(5.0));
    train_y.push_back(1);
  }
  DtwKnnClassifier knn(0.2);
  knn.Fit(train_x, train_y);
  int correct = 0;
  for (int i = 0; i < 10; ++i) {
    if (knn.Predict(make(2.0)) == 0) ++correct;
    if (knn.Predict(make(5.0)) == 1) ++correct;
  }
  EXPECT_GE(correct, 18);
}

}  // namespace
}  // namespace msd
