// Tests for the data pipeline: datasets, loader, scaler, window sampling.
#include "data/dataset.h"

#include <set>

#include <gtest/gtest.h>

#include "data/scaler.h"
#include "data/window_dataset.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

Tensor RampSeries(int64_t channels, int64_t length) {
  Tensor t({channels, length});
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t i = 0; i < length; ++i) {
      t.set({c, i}, static_cast<float>(c * 1000 + i));
    }
  }
  return t;
}

TEST(SplitSeriesTest, ChronologicalFractions) {
  Tensor series = RampSeries(2, 100);
  SeriesSplits splits = SplitSeries(series, {0.7, 0.1});
  EXPECT_EQ(splits.train.dim(1), 70);
  EXPECT_EQ(splits.val.dim(1), 10);
  EXPECT_EQ(splits.test.dim(1), 20);
  EXPECT_EQ(splits.train.at({0, 0}), 0.0f);
  EXPECT_EQ(splits.val.at({0, 0}), 70.0f);
  EXPECT_EQ(splits.test.at({0, 0}), 80.0f);
}

TEST(SplitSeriesTest, EmptySplitDies) {
  Tensor series = RampSeries(1, 10);
  EXPECT_DEATH(SplitSeries(series, {0.99, 0.005}), "");
}

TEST(ForecastWindowTest, CountAndAlignment) {
  Tensor series = RampSeries(1, 20);
  ForecastWindowDataset ds(series, /*lookback=*/5, /*horizon=*/3);
  // usable = 20 - 5 - 3 = 12 -> 13 windows.
  EXPECT_EQ(ds.Size(), 13);
  Sample s0 = ds.Get(0);
  EXPECT_EQ(s0.input.shape(), (Shape{1, 5}));
  EXPECT_EQ(s0.target.shape(), (Shape{1, 3}));
  EXPECT_EQ(s0.input.at({0, 0}), 0.0f);
  EXPECT_EQ(s0.target.at({0, 0}), 5.0f);
  Sample last = ds.Get(12);
  EXPECT_EQ(last.input.at({0, 0}), 12.0f);
  EXPECT_EQ(last.target.at({0, 2}), 19.0f);
}

TEST(ForecastWindowTest, StrideSkipsWindows) {
  Tensor series = RampSeries(1, 20);
  ForecastWindowDataset ds(series, 5, 3, /*stride=*/4);
  EXPECT_EQ(ds.Size(), 4);
  EXPECT_EQ(ds.Get(1).input.at({0, 0}), 4.0f);
}

TEST(ForecastWindowTest, TooShortDies) {
  Tensor series = RampSeries(1, 6);
  EXPECT_DEATH(ForecastWindowDataset(series, 5, 3), "too short");
}

TEST(ImputationWindowTest, MaskIsDeterministicAndApplied) {
  Tensor series = RampSeries(2, 50);
  // Offset so zeros in the input unambiguously mark masked points.
  series = AddScalar(series, 10.0f);
  ImputationWindowDataset ds(series, /*window=*/10, /*missing_ratio=*/0.4,
                             /*seed=*/7);
  Sample a = ds.Get(3);
  Sample b = ds.Get(3);
  EXPECT_TRUE(AllClose(a.input, b.input, 0.0f, 0.0f));
  Tensor mask = ds.MaskFor(3);
  EXPECT_TRUE(AllClose(a.input, Mul(a.target, mask), 0.0f, 0.0f));
  // Roughly 40% missing, checked on a statistically meaningful window size.
  ImputationWindowDataset wide(RampSeries(4, 600), /*window=*/500,
                               /*missing_ratio=*/0.4, /*seed=*/7);
  const float observed = SumAll(wide.MaskFor(0)).item();
  EXPECT_NEAR(observed / 2000.0f, 0.6f, 0.05f);
}

TEST(ImputationWindowTest, DifferentWindowsGetDifferentMasks) {
  Tensor series = RampSeries(1, 100);
  ImputationWindowDataset ds(series, 20, 0.5, 11);
  EXPECT_FALSE(AllClose(ds.MaskFor(0), ds.MaskFor(1), 0.0f, 0.0f));
}

TEST(ReconstructionWindowTest, NonOverlappingWindows) {
  Tensor series = RampSeries(1, 25);
  ReconstructionWindowDataset ds(series, 10);
  EXPECT_EQ(ds.Size(), 2);  // trailing 5 steps dropped
  Sample s1 = ds.Get(1);
  EXPECT_EQ(s1.input.at({0, 0}), 10.0f);
  EXPECT_TRUE(AllClose(s1.input, s1.target, 0.0f, 0.0f));
}

TEST(DataLoaderTest, BatchesCoverDatasetOnce) {
  std::vector<Sample> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({Tensor::Full({2}, static_cast<float>(i)),
                       Tensor::Full({1}, static_cast<float>(i))});
  }
  VectorDataset ds(std::move(samples));
  Rng rng(1);
  DataLoader loader(&ds, /*batch_size=*/3, /*shuffle=*/true, rng);
  EXPECT_EQ(loader.NumBatches(), 4);
  std::multiset<float> seen;
  for (int64_t b = 0; b < loader.NumBatches(); ++b) {
    Batch batch = loader.GetBatch(b);
    EXPECT_EQ(batch.input.rank(), 2);
    for (int64_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.input.at({i, 0}));
    }
  }
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u);
  }
}

TEST(DataLoaderTest, LastBatchMayBeSmaller) {
  std::vector<Sample> samples(7, {Tensor::Ones({2}), Tensor::Ones({1})});
  VectorDataset ds(std::move(samples));
  Rng rng(2);
  DataLoader loader(&ds, 4, false, rng);
  EXPECT_EQ(loader.GetBatch(0).size(), 4);
  EXPECT_EQ(loader.GetBatch(1).size(), 3);
}

TEST(DataLoaderTest, NoShufflePreservesOrder) {
  std::vector<Sample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back({Tensor::Full({1}, static_cast<float>(i)),
                       Tensor::Full({1}, 0.0f)});
  }
  VectorDataset ds(std::move(samples));
  Rng rng(3);
  DataLoader loader(&ds, 2, false, rng);
  EXPECT_EQ(loader.GetBatch(0).input.at({0, 0}), 0.0f);
  EXPECT_EQ(loader.GetBatch(0).input.at({1, 0}), 1.0f);
  EXPECT_EQ(loader.GetBatch(2).input.at({0, 0}), 4.0f);
}

TEST(DataLoaderTest, ReshuffleChangesOrder) {
  std::vector<Sample> samples;
  for (int i = 0; i < 64; ++i) {
    samples.push_back({Tensor::Full({1}, static_cast<float>(i)),
                       Tensor::Full({1}, 0.0f)});
  }
  VectorDataset ds(std::move(samples));
  Rng rng(4);
  DataLoader loader(&ds, 64, true, rng);
  Tensor before = loader.GetBatch(0).input;
  loader.Reshuffle();
  Tensor after = loader.GetBatch(0).input;
  EXPECT_FALSE(AllClose(before, after, 0.0f, 0.0f));
}

TEST(ScalerTest, TransformThenInverseIsIdentity) {
  Rng rng(5);
  Tensor series = Tensor::RandNormal({3, 200}, 4.0f, 2.5f, rng);
  StandardScaler scaler;
  scaler.Fit(series);
  Tensor z = scaler.Transform(series);
  // Standardized: per-channel mean ~0, std ~1.
  Tensor mean = Mean(z, {1}, false);
  EXPECT_LT(MaxAbs(mean), 1e-4f);
  Tensor back = scaler.InverseTransform(z);
  EXPECT_TRUE(AllClose(back, series, 1e-3f, 1e-3f));
}

TEST(ScalerTest, BatchedTransformBroadcasts) {
  Rng rng(6);
  Tensor series = Tensor::RandNormal({3, 100}, 2.0f, 1.0f, rng);
  StandardScaler scaler;
  scaler.Fit(series);
  Tensor batch = Tensor::RandNormal({4, 3, 10}, 2.0f, 1.0f, rng);
  Tensor z = scaler.Transform(batch);
  EXPECT_EQ(z.shape(), (Shape{4, 3, 10}));
  EXPECT_TRUE(AllClose(scaler.InverseTransform(z), batch, 1e-3f, 1e-3f));
}

TEST(ScalerTest, ConstantChannelDoesNotDivideByZero) {
  Tensor series = Tensor::Full({1, 50}, 3.0f);
  StandardScaler scaler;
  scaler.Fit(series);
  Tensor z = scaler.Transform(series);
  EXPECT_FALSE(HasNonFinite(z));
}

TEST(MaskTest, RatioRespected) {
  Rng rng(7);
  Tensor mask = RandomObservationMask({100, 100}, 0.25, rng);
  const float observed = SumAll(mask).item();
  EXPECT_NEAR(observed / 10000.0f, 0.75f, 0.02f);
}

}  // namespace
}  // namespace msd
