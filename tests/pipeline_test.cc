// Tests for the high-level ForecastPipeline, early stopping, and Huber loss.
#include "tasks/pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/series_builder.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

Tensor DemoSeries(uint64_t seed = 5, int64_t length = 900) {
  SeriesConfig config;
  config.length = length;
  config.seed = seed;
  config.channel_mix = 0.2;
  for (int c = 0; c < 2; ++c) {
    ChannelSpec spec;
    spec.level = 10.0 + 5.0 * c;
    spec.seasonals = {{12.0, 2.0, 0.5 * c, 1}};
    spec.ar_coeff = 0.4;
    spec.noise_sigma = 0.3;
    config.channels.push_back(spec);
  }
  return GenerateSeries(config);
}

ForecastPipelineConfig FastConfig() {
  ForecastPipelineConfig config;
  config.lookback = 36;
  config.horizon = 12;
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.trainer.epochs = 3;
  config.trainer.batch_size = 16;
  config.trainer.lr = 3e-3f;
  config.trainer.max_batches_per_epoch = 12;
  return config;
}

TEST(ForecastPipelineTest, FitDerivesLadderAndPredictsInOriginalUnits) {
  ForecastPipeline pipeline(FastConfig(), /*seed=*/3);
  Tensor series = DemoSeries();
  EXPECT_FALSE(pipeline.fitted());
  pipeline.Fit(series);
  EXPECT_TRUE(pipeline.fitted());
  // Derived ladder starts at the dominant period (12).
  EXPECT_EQ(pipeline.model().config().patch_sizes.front(), 12);

  Tensor forecast = pipeline.Predict(series);
  EXPECT_EQ(forecast.shape(), (Shape{2, 12}));
  // Original units: near the channel levels (10/15), not near 0.
  EXPECT_GT(MeanAll(Slice(forecast, 0, 0, 1)).item(), 5.0f);
  EXPECT_GT(MeanAll(Slice(forecast, 0, 1, 1)).item(), 8.0f);
}

TEST(ForecastPipelineTest, PredictRequiresFit) {
  ForecastPipeline pipeline(FastConfig());
  EXPECT_DEATH(pipeline.Predict(Tensor::Ones({2, 64})), "Fit");
}

TEST(ForecastPipelineTest, RollingPredictionCoversRequestedSteps) {
  ForecastPipeline pipeline(FastConfig(), 4);
  Tensor series = DemoSeries(7);
  pipeline.Fit(series);
  Tensor rolled = pipeline.PredictRolling(series, 30);
  EXPECT_EQ(rolled.shape(), (Shape{2, 30}));
  EXPECT_FALSE(HasNonFinite(rolled));
}

TEST(ForecastPipelineTest, SaveLoadReproducesPredictions) {
  ForecastPipelineConfig config = FastConfig();
  ForecastPipeline pipeline(config, 5);
  Tensor series = DemoSeries(9);
  pipeline.Fit(series);
  Tensor before = pipeline.Predict(series);

  const std::string path = ::testing::TempDir() + "/pipeline_roundtrip.ckpt";
  Status saved = pipeline.Save(path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  ForecastPipeline restored(config, /*seed=*/999);
  Status loaded = restored.Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  Tensor after = restored.Predict(series);
  EXPECT_TRUE(AllClose(after, before, 1e-4f, 1e-4f));
}

TEST(ForecastPipelineTest, LoadMissingMetaFails) {
  ForecastPipeline pipeline(FastConfig());
  EXPECT_FALSE(pipeline.Load("/nonexistent/pipeline.ckpt").ok());
}

TEST(EarlyStoppingTest, StopsBeforeMaxEpochsOnPlateau) {
  ForecastPipelineConfig config = FastConfig();
  config.trainer.epochs = 40;
  config.trainer.early_stop_patience = 2;
  config.trainer.max_batches_per_epoch = 6;
  ForecastPipeline pipeline(config, 6);
  TrainStats stats = pipeline.Fit(DemoSeries(11, 700));
  EXPECT_TRUE(stats.early_stopped);
  EXPECT_LT(static_cast<int64_t>(stats.epoch_losses.size()), 40);
  EXPECT_EQ(stats.val_losses.size(), stats.epoch_losses.size());
  EXPECT_TRUE(std::isfinite(stats.best_val_loss()));
}

TEST(HuberLossTest, MatchesMseInQuadraticRegion) {
  Variable pred(Tensor({3}, {0.1f, -0.2f, 0.3f}));
  Variable target(Tensor::Zeros({3}));
  // |e| < delta=1: Huber = 0.5 * e^2 (mean).
  const float expected =
      0.5f * (0.01f + 0.04f + 0.09f) / 3.0f;
  EXPECT_NEAR(HuberLoss(pred, target, 1.0f).item(), expected, 1e-6f);
}

TEST(HuberLossTest, LinearBeyondDelta) {
  Variable pred(Tensor({1}, {5.0f}));
  Variable target(Tensor::Zeros({1}));
  // delta=1, |e|=5: 0.5*1 + 1*(5-1) = 4.5.
  EXPECT_NEAR(HuberLoss(pred, target, 1.0f).item(), 4.5f, 1e-5f);
}

TEST(HuberLossTest, GradientBoundedByDelta) {
  Variable pred(Tensor({2}, {100.0f, -100.0f}), true);
  Variable target(Tensor::Zeros({2}));
  HuberLoss(pred, target, 1.0f).Backward();
  // d/dx mean(huber) = sign(e) * delta / n = +-0.5.
  EXPECT_NEAR(pred.grad().at({0}), 0.5f, 1e-4f);
  EXPECT_NEAR(pred.grad().at({1}), -0.5f, 1e-4f);
}

TEST(HuberLossTest, LessSensitiveToOutliersThanMse) {
  Variable clean(Tensor({4}, {0.1f, 0.1f, 0.1f, 0.1f}));
  Variable dirty(Tensor({4}, {0.1f, 0.1f, 0.1f, 50.0f}));
  Variable target(Tensor::Zeros({4}));
  const float mse_ratio = MseLoss(dirty, target).item() /
                          MseLoss(clean, target).item();
  const float huber_ratio = HuberLoss(dirty, target).item() /
                            HuberLoss(clean, target).item();
  EXPECT_LT(huber_ratio, mse_ratio / 10.0f);
}

}  // namespace
}  // namespace msd
