// Tests for optimizers, gradient clipping, and LR schedules.
#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// Minimizes ||w - target||^2 with the given optimizer; returns final w.
template <typename MakeOpt>
Tensor MinimizeQuadratic(MakeOpt make_opt, int steps) {
  Variable w(Tensor({3}, {5.0f, -4.0f, 2.0f}), true);
  Tensor target({3}, {1.0f, 2.0f, -1.0f});
  auto opt = make_opt(std::vector<Variable>{w});
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Variable loss = SumAll(Square(Sub(w, Variable(target))));
    loss.Backward();
    opt->Step();
  }
  return w.value().Clone();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      100);
  EXPECT_TRUE(AllClose(w, Tensor({3}, {1.0f, 2.0f, -1.0f}), 1e-3f, 1e-3f));
}

TEST(SgdTest, MomentumConverges) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<Variable> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05f, 0.9f);
      },
      200);
  EXPECT_TRUE(AllClose(w, Tensor({3}, {1.0f, 2.0f, -1.0f}), 1e-3f, 1e-3f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<Variable> p) {
        return std::make_unique<Adam>(std::move(p), 0.1f);
      },
      300);
  EXPECT_TRUE(AllClose(w, Tensor({3}, {1.0f, 2.0f, -1.0f}), 1e-2f, 1e-2f));
}

TEST(AdamTest, DecoupledWeightDecayShrinksWeights) {
  // With zero gradient signal, AdamW decay pulls weights toward zero.
  Variable w(Tensor({2}, {10.0f, -10.0f}), true);
  Adam opt({w}, /*lr=*/0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f,
           /*decoupled=*/true);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    // Constant-zero loss contribution: gradient of sum(0*w) is zero but
    // defined, so Step() applies only decay.
    Variable loss = SumAll(Mul(w, Variable(Tensor::Zeros({2}))));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(std::fabs(w.value().at({0})), 10.0f * std::pow(1.0f - 0.01f, 50));
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  Variable used(Tensor::Ones({1}), true);
  Variable unused(Tensor::Ones({1}), true);
  Sgd opt({used, unused}, 0.5f);
  Variable loss = SumAll(Square(used));
  loss.Backward();
  opt.Step();
  EXPECT_NE(used.value().item(), 1.0f);
  EXPECT_EQ(unused.value().item(), 1.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Variable w(Tensor::Ones({2}), true);
  Sgd opt({w}, 0.1f);
  SumAll(Square(w)).Backward();
  EXPECT_TRUE(w.has_grad());
  opt.ZeroGrad();
  EXPECT_FALSE(w.has_grad());
}

TEST(OptimizerTest, NonTrainableParamDies) {
  Variable w(Tensor::Ones({2}), false);
  EXPECT_DEATH(Sgd({w}, 0.1f), "non-trainable");
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable w(Tensor({2}, {0.0f, 0.0f}), true);
  Variable loss = SumAll(Mul(w, Variable(Tensor({2}, {3.0f, 4.0f}))));
  loss.Backward();
  const float norm = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad().at({0}), 3.0f / 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad().at({1}), 4.0f / 5.0f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable w(Tensor({1}, {0.0f}), true);
  SumAll(MulScalar(w, 0.5f)).Backward();
  ClipGradNorm({w}, 10.0f);
  EXPECT_NEAR(w.grad().item(), 0.5f, 1e-6f);
}

TEST(SchedulerTest, ExponentialDecay) {
  Variable w(Tensor::Ones({1}), true);
  Sgd opt({w}, 1.0f);
  ExponentialLr sched(&opt, 0.5f);
  sched.SetEpoch(0);
  EXPECT_NEAR(opt.lr(), 1.0f, 1e-6f);
  sched.SetEpoch(3);
  EXPECT_NEAR(opt.lr(), 0.125f, 1e-6f);
}

TEST(SchedulerTest, CosineAnneal) {
  Variable w(Tensor::Ones({1}), true);
  Sgd opt({w}, 1.0f);
  CosineLr sched(&opt, 10, 0.1f);
  sched.SetEpoch(0);
  EXPECT_NEAR(opt.lr(), 1.0f, 1e-5f);
  sched.SetEpoch(5);
  EXPECT_NEAR(opt.lr(), 0.55f, 1e-5f);
  sched.SetEpoch(10);
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
  sched.SetEpoch(20);  // clamped past the end
  EXPECT_NEAR(opt.lr(), 0.1f, 1e-5f);
}

TEST(IntegrationTest, TinyMlpLearnsXor) {
  // End-to-end: 2-layer MLP fits XOR with Adam.
  Rng rng(99);
  Variable w1(Tensor::RandNormal({2, 8}, 0, 0.7f, rng), true);
  Variable b1(Tensor::Zeros({8}), true);
  Variable w2(Tensor::RandNormal({8, 1}, 0, 0.7f, rng), true);
  Variable b2(Tensor::Zeros({1}), true);
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y({4, 1}, {0, 1, 1, 0});
  Adam opt({w1, b1, w2, b2}, 0.05f);
  float final_loss = 1.0f;
  for (int step = 0; step < 500; ++step) {
    opt.ZeroGrad();
    Variable h = Tanh(Add(MatMul(Variable(x), w1), b1));
    Variable out = Sigmoid(Add(MatMul(h, w2), b2));
    Variable loss = MeanAll(Square(Sub(out, Variable(y))));
    loss.Backward();
    opt.Step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.02f);
}

}  // namespace
}  // namespace msd
