// Statistical and property tests for the RNG and metric functions:
// distribution moments, shuffle uniformity, and parameterized sweeps over
// the M4 metric identities.
#include "common/rng.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace msd {
namespace {

TEST(RngStatsTest, GaussianMomentsMatch) {
  Rng rng(101);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngStatsTest, UniformIsUniform) {
  Rng rng(102);
  const int n = 100000;
  const int buckets = 10;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    counts[static_cast<size_t>(u * buckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / buckets, 4.0 * std::sqrt(n / buckets));
  }
}

TEST(RngStatsTest, BernoulliRate) {
  Rng rng(103);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngStatsTest, UniformIntCoversRange) {
  Rng rng(104);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 60000; ++i) counts[rng.UniformInt(6)]++;
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [value, count] : counts) {
    EXPECT_GE(value, 0);
    EXPECT_LT(value, 6);
    EXPECT_NEAR(count, 10000, 500);
  }
}

TEST(RngStatsTest, ShuffleIsUnbiasedOnFirstPosition) {
  // Each element should land in position 0 with probability ~1/4.
  std::map<int, int> first;
  Rng rng(105);
  for (int trial = 0; trial < 40000; ++trial) {
    std::vector<int> values = {0, 1, 2, 3};
    rng.Shuffle(values);
    first[values[0]]++;
  }
  for (const auto& [value, count] : first) {
    EXPECT_NEAR(count, 10000, 500) << "value " << value;
  }
}

TEST(RngStatsTest, ForkProducesIndependentStreams) {
  Rng parent(106);
  Rng child = parent.Fork();
  // The two streams should not be identical over a window.
  int agreements = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(RngStatsTest, SeedDeterminism) {
  Rng a(107);
  Rng b(107);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

// ---- M4 metric property sweeps ------------------------------------------------

class M4MetricSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(M4MetricSweep, PerfectForecastScoresZeroAndScaleInvariance) {
  const int64_t m = GetParam();
  Rng rng(200 + static_cast<uint64_t>(m));
  std::vector<float> history;
  for (int t = 0; t < 60; ++t) {
    history.push_back(
        50.0f + 10.0f * std::sin(2.0f * static_cast<float>(M_PI) * t /
                                 std::max<int64_t>(m, 4)) +
        rng.Gaussian(0.0f, 1.0f));
  }
  std::vector<float> actual(history.end() - 8, history.end());
  std::vector<float> insample(history.begin(), history.end() - 8);

  EXPECT_NEAR(Smape(actual, actual), 0.0, 1e-9);
  EXPECT_NEAR(Mase(actual, actual, insample, m), 0.0, 1e-9);

  // SMAPE and MASE are invariant to rescaling all series by the same factor.
  auto scale = [](std::vector<float> v, float k) {
    for (float& x : v) x *= k;
    return v;
  };
  std::vector<float> forecast = actual;
  forecast[0] += 5.0f;
  const double smape1 = Smape(forecast, actual);
  const double smape2 = Smape(scale(forecast, 3.0f), scale(actual, 3.0f));
  EXPECT_NEAR(smape1, smape2, 1e-6);
  const double mase1 = Mase(forecast, actual, insample, m);
  const double mase2 = Mase(scale(forecast, 3.0f), scale(actual, 3.0f),
                            scale(insample, 3.0f), m);
  EXPECT_NEAR(mase1, mase2, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Periods, M4MetricSweep,
                         ::testing::Values(1, 4, 12, 24));

class PointAdjustSweep : public ::testing::TestWithParam<double> {};

TEST_P(PointAdjustSweep, AdjustedF1NeverBelowRaw) {
  // Point adjustment can only add true positives within labeled segments.
  const double detect_rate = GetParam();
  Rng rng(300);
  std::vector<int> labels(500, 0);
  for (int seg = 0; seg < 8; ++seg) {
    const int start = static_cast<int>(rng.UniformInt(460));
    for (int i = start; i < start + 30 && i < 500; ++i) labels[(size_t)i] = 1;
  }
  std::vector<int> predictions(500, 0);
  for (size_t i = 0; i < 500; ++i) {
    if (labels[i] == 1 && rng.Bernoulli(detect_rate)) predictions[i] = 1;
    if (labels[i] == 0 && rng.Bernoulli(0.02)) predictions[i] = 1;
  }
  const double raw_f1 = PrecisionRecallF1(predictions, labels).f1;
  const double adjusted_f1 =
      PrecisionRecallF1(PointAdjust(predictions, labels), labels).f1;
  EXPECT_GE(adjusted_f1 + 1e-12, raw_f1);
}

INSTANTIATE_TEST_SUITE_P(Rates, PointAdjustSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.9));

}  // namespace
}  // namespace msd
