// Exhaustive gradient verification: every differentiable op in
// autograd/ops.h and every nn/core module gets a CheckGradient case with a
// fixed seed. Registered as the single ctest `gradcheck_sweep` (it is one
// logical gate; per-case names still show up in the gtest output).
//
// Non-scalar outputs are scalarized as SumAll(op(x) * probe) with a fixed
// random probe, so an op that scrambles its layout (bad permute/reshape
// backward) cannot cancel the error the way plain SumAll would.
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/mlp_block.h"
#include "core/msd_mixer.h"
#include "core/patch_coder.h"
#include "nn/attention.h"
#include "nn/conv_layer.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/revin.h"
#include "tensor/tensor.h"

namespace msd {
namespace {

using OpFn = std::function<Variable(const Variable&)>;

struct SweepCase {
  std::string name;  // must be a valid gtest identifier
  std::function<GradCheckResult()> run;
};

Tensor Uniform(Shape shape, float lo, float hi, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandUniform(std::move(shape), lo, hi, rng);
}

// Magnitudes in [0.3, 1.0] with random signs: keeps inputs at least 30x the
// finite-difference step away from the kinks of Abs/Relu/Div/MAE at 0.
Tensor AwayFromZero(Shape shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::RandUniform(std::move(shape), 0.3f, 1.0f, rng);
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (rng.Bernoulli(0.5)) p[i] = -p[i];
  }
  return t;
}

// Scalarizes `op` with a fixed random probe and runs CheckGradient at `x0`.
GradCheckResult CheckScalarized(const OpFn& op, const Tensor& x0,
                                uint64_t probe_seed,
                                const GradCheckOptions& options = {}) {
  Shape out_shape;
  {
    NoGradGuard no_grad;
    out_shape = op(Variable(x0)).shape();
  }
  Rng rng(probe_seed);
  const Variable probe(Tensor::RandUniform(out_shape, 0.5f, 1.5f, rng));
  const auto f = [&op, &probe](const Variable& x) {
    return SumAll(Mul(op(x), probe));
  };
  return CheckGradient(f, x0, options);
}

// ---- Case table ------------------------------------------------------------

void AddOpCases(std::vector<SweepCase>* cases) {
  auto add = [cases](std::string name, std::function<GradCheckResult()> run) {
    cases->push_back({std::move(name), std::move(run)});
  };

  // Elementwise binary, both argument slots, plus broadcasting both ways.
  add("Add_lhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 11));
    return CheckScalarized([&](const Variable& x) { return Add(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 12), 13);
  });
  add("Add_rhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 21));
    return CheckScalarized([&](const Variable& x) { return Add(c, x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 22), 23);
  });
  add("Add_broadcast_suffix", [] {
    const Variable c(Uniform({3}, -1.0f, 1.0f, 31));
    return CheckScalarized([&](const Variable& x) { return Add(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 32), 33);
  });
  add("Add_broadcast_reduce", [] {
    // x is the *small* side: its gradient must reduce over the broadcast dim.
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 41));
    return CheckScalarized([&](const Variable& x) { return Add(c, x); },
                           Uniform({3}, -1.0f, 1.0f, 42), 43);
  });
  add("Sub_lhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 51));
    return CheckScalarized([&](const Variable& x) { return Sub(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 52), 53);
  });
  add("Sub_rhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 61));
    return CheckScalarized([&](const Variable& x) { return Sub(c, x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 62), 63);
  });
  add("Mul_lhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 71));
    return CheckScalarized([&](const Variable& x) { return Mul(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 72), 73);
  });
  add("Mul_rhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 81));
    return CheckScalarized([&](const Variable& x) { return Mul(c, x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 82), 83);
  });
  add("Mul_broadcast_reduce", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 91));
    return CheckScalarized([&](const Variable& x) { return Mul(c, x); },
                           Uniform({3}, -1.0f, 1.0f, 92), 93);
  });
  add("Div_lhs", [] {
    const Variable c(AwayFromZero({2, 3}, 101));
    return CheckScalarized([&](const Variable& x) { return Div(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 102), 103);
  });
  add("Div_rhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 111));
    return CheckScalarized([&](const Variable& x) { return Div(c, x); },
                           AwayFromZero({2, 3}, 112), 113);
  });

  add("AddScalar", [] {
    return CheckScalarized(
        [](const Variable& x) { return AddScalar(x, 0.7f); },
        Uniform({2, 3}, -1.0f, 1.0f, 121), 122);
  });
  add("MulScalar", [] {
    return CheckScalarized(
        [](const Variable& x) { return MulScalar(x, -1.3f); },
        Uniform({2, 3}, -1.0f, 1.0f, 131), 132);
  });

  // Elementwise unary; domains bounded away from kinks/poles.
  add("Neg", [] {
    return CheckScalarized([](const Variable& x) { return Neg(x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 141), 142);
  });
  add("Exp", [] {
    return CheckScalarized([](const Variable& x) { return Exp(x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 151), 152);
  });
  add("Log", [] {
    return CheckScalarized([](const Variable& x) { return Log(x); },
                           Uniform({2, 3}, 0.5f, 2.0f, 161), 162);
  });
  add("Sqrt", [] {
    return CheckScalarized([](const Variable& x) { return Sqrt(x); },
                           Uniform({2, 3}, 0.25f, 2.0f, 171), 172);
  });
  add("Square", [] {
    return CheckScalarized([](const Variable& x) { return Square(x); },
                           Uniform({2, 3}, -1.0f, 1.0f, 181), 182);
  });
  add("Abs", [] {
    return CheckScalarized([](const Variable& x) { return Abs(x); },
                           AwayFromZero({2, 3}, 191), 192);
  });
  add("Relu", [] {
    return CheckScalarized([](const Variable& x) { return Relu(x); },
                           AwayFromZero({2, 3}, 201), 202);
  });
  add("Gelu", [] {
    return CheckScalarized([](const Variable& x) { return Gelu(x); },
                           Uniform({2, 3}, -2.0f, 2.0f, 211), 212);
  });
  add("Sigmoid", [] {
    return CheckScalarized([](const Variable& x) { return Sigmoid(x); },
                           Uniform({2, 3}, -2.0f, 2.0f, 221), 222);
  });
  add("Tanh", [] {
    return CheckScalarized([](const Variable& x) { return Tanh(x); },
                           Uniform({2, 3}, -2.0f, 2.0f, 231), 232);
  });

  // Linear algebra.
  add("MatMul_lhs", [] {
    const Variable c(Uniform({3, 4}, -1.0f, 1.0f, 241));
    return CheckScalarized([&](const Variable& x) { return MatMul(x, c); },
                           Uniform({2, 3}, -1.0f, 1.0f, 242), 243);
  });
  add("MatMul_rhs", [] {
    const Variable c(Uniform({2, 3}, -1.0f, 1.0f, 251));
    return CheckScalarized([&](const Variable& x) { return MatMul(c, x); },
                           Uniform({3, 4}, -1.0f, 1.0f, 252), 253);
  });
  add("MatMul_batched", [] {
    const Variable c(Uniform({2, 3, 4}, -1.0f, 1.0f, 261));
    return CheckScalarized([&](const Variable& x) { return MatMul(x, c); },
                           Uniform({2, 2, 3}, -1.0f, 1.0f, 262), 263);
  });
  add("MatMul_batch_broadcast", [] {
    // Rank-2 rhs broadcast over the batch dim: its gradient must reduce.
    const Variable c(Uniform({2, 2, 3}, -1.0f, 1.0f, 271));
    return CheckScalarized([&](const Variable& x) { return MatMul(c, x); },
                           Uniform({3, 4}, -1.0f, 1.0f, 272), 273);
  });
  // Fused GEMM epilogues (MatMulEx): every activation, each argument slot.
  // The backward recovers dz from the activation output (gelu from the saved
  // pre-activation), so each slot exercises a different recovery formula.
  add("MatMulEx_identity_bias", [] {
    const Variable a(Uniform({2, 3}, -1.0f, 1.0f, 2001));
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2002));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(a, b, x, gemm::Activation::kIdentity);
        },
        Uniform({4}, -1.0f, 1.0f, 2003), 2004);
  });
  add("MatMulEx_relu_lhs", [] {
    // Bias of magnitude >= 0.5 pushes the pre-activations away from relu's
    // kink so the finite-difference probe cannot cross it.
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2011));
    const Variable bias(AwayFromZero({4}, 2012));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(x, b, bias, gemm::Activation::kRelu);
        },
        Uniform({2, 3}, -0.1f, 0.1f, 2013), 2014);
  });
  add("MatMulEx_gelu_lhs", [] {
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2021));
    const Variable bias(Uniform({4}, -1.0f, 1.0f, 2022));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(x, b, bias, gemm::Activation::kGelu);
        },
        Uniform({2, 3}, -1.0f, 1.0f, 2023), 2024);
  });
  add("MatMulEx_gelu_rhs", [] {
    const Variable a(Uniform({2, 3}, -1.0f, 1.0f, 2031));
    const Variable bias(Uniform({4}, -1.0f, 1.0f, 2032));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(a, x, bias, gemm::Activation::kGelu);
        },
        Uniform({3, 4}, -1.0f, 1.0f, 2033), 2034);
  });
  add("MatMulEx_gelu_bias", [] {
    const Variable a(Uniform({2, 3}, -1.0f, 1.0f, 2041));
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2042));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(a, b, x, gemm::Activation::kGelu);
        },
        Uniform({4}, -1.0f, 1.0f, 2043), 2044);
  });
  add("MatMulEx_tanh_lhs", [] {
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2051));
    const Variable bias(Uniform({4}, -1.0f, 1.0f, 2052));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(x, b, bias, gemm::Activation::kTanh);
        },
        Uniform({2, 3}, -1.0f, 1.0f, 2053), 2054);
  });
  add("MatMulEx_sigmoid_bias", [] {
    const Variable a(Uniform({2, 3}, -1.0f, 1.0f, 2061));
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2062));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(a, b, x, gemm::Activation::kSigmoid);
        },
        Uniform({4}, -1.0f, 1.0f, 2063), 2064);
  });
  add("MatMulEx_batched_gelu", [] {
    // Rank-3 lhs against a shared rank-2 rhs: the flattened single-GEMM
    // path, with the bias gradient reducing over batch and rows.
    const Variable b(Uniform({3, 4}, -1.0f, 1.0f, 2071));
    const Variable bias(Uniform({4}, -1.0f, 1.0f, 2072));
    return CheckScalarized(
        [&](const Variable& x) {
          return MatMulEx(x, b, bias, gemm::Activation::kGelu);
        },
        Uniform({2, 2, 3}, -1.0f, 1.0f, 2073), 2074);
  });
  add("Conv2d_input", [] {
    const Variable k(Uniform({3, 2, 3, 3}, -0.5f, 0.5f, 281));
    return CheckScalarized(
        [&](const Variable& x) { return Conv2d(x, k, 2, 1); },
        Uniform({1, 2, 5, 5}, -1.0f, 1.0f, 282), 283);
  });
  add("Conv2d_kernel", [] {
    const Variable in(Uniform({1, 2, 5, 5}, -1.0f, 1.0f, 291));
    return CheckScalarized(
        [&](const Variable& x) { return Conv2d(in, x, 2, 1); },
        Uniform({3, 2, 3, 3}, -0.5f, 0.5f, 292), 293);
  });

  // Reductions.
  add("Sum_dim", [] {
    return CheckScalarized(
        [](const Variable& x) { return Sum(x, {1}, false); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 301), 302);
  });
  add("Sum_keepdim", [] {
    return CheckScalarized(
        [](const Variable& x) { return Sum(x, {0, 2}, true); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 311), 312);
  });
  add("Mean_dim", [] {
    return CheckScalarized(
        [](const Variable& x) { return Mean(x, {2}, false); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 321), 322);
  });
  add("SumAll", [] {
    return CheckGradient([](const Variable& x) { return SumAll(x); },
                         Uniform({2, 3, 4}, -1.0f, 1.0f, 331));
  });
  add("MeanAll", [] {
    return CheckGradient([](const Variable& x) { return MeanAll(x); },
                         Uniform({2, 3, 4}, -1.0f, 1.0f, 341));
  });

  // Movement: the probe scalarization is what makes these meaningful — a
  // backward that permutes gradients into the wrong slots still sums to the
  // same total under plain SumAll.
  add("Reshape", [] {
    return CheckScalarized(
        [](const Variable& x) { return Reshape(x, {4, 6}); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 351), 352);
  });
  add("Permute", [] {
    return CheckScalarized(
        [](const Variable& x) { return Permute(x, {2, 0, 1}); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 361), 362);
  });
  add("Transpose", [] {
    return CheckScalarized(
        [](const Variable& x) { return Transpose(x, 0, 2); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 371), 372);
  });
  add("Slice", [] {
    return CheckScalarized(
        [](const Variable& x) { return Slice(x, 1, 1, 2); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 381), 382);
  });
  add("Pad", [] {
    return CheckScalarized(
        [](const Variable& x) { return Pad(x, 2, 1, 2, 0.5f); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 391), 392);
  });
  add("Concat_repeated_input", [] {
    // x appears twice: its gradient is the sum of two slices' contributions.
    const Variable c(Uniform({2, 2, 4}, -1.0f, 1.0f, 401));
    return CheckScalarized(
        [&](const Variable& x) { return Concat({x, c, x}, 1); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 402), 403);
  });

  // Composite.
  add("Softmax", [] {
    return CheckScalarized(
        [](const Variable& x) { return Softmax(x, 1); },
        Uniform({2, 5}, -2.0f, 2.0f, 411), 412);
  });
  add("LogSoftmax", [] {
    return CheckScalarized(
        [](const Variable& x) { return LogSoftmax(x, 1); },
        Uniform({2, 5}, -2.0f, 2.0f, 421), 422);
  });
}

void AddModuleCases(std::vector<SweepCase>* cases) {
  auto add = [cases](std::string name, std::function<GradCheckResult()> run) {
    cases->push_back({std::move(name), std::move(run)});
  };

  // All modules run in eval mode: CheckGradient requires a pure function, and
  // eval freezes the stochastic ones (Dropout, DropPath).
  add("Module_Linear", [] {
    Rng rng(1001);
    Linear module(4, 5, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1002), 1003);
  });
  add("Module_LayerNorm", [] {
    LayerNorm module(4);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1012), 1013);
  });
  add("Module_Dropout_eval_identity", [] {
    Rng rng(1021);
    Dropout module(0.5f, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 3}, -1.0f, 1.0f, 1022), 1023);
  });
  add("Module_Sequential", [] {
    Rng rng(1031);
    Sequential module;
    module.Add(std::make_unique<Linear>(4, 6, rng))
        .Add(std::make_unique<Activation>(ActivationKind::kGelu))
        .Add(std::make_unique<Linear>(6, 2, rng));
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 4}, -1.0f, 1.0f, 1032), 1033);
  });
  add("Module_Conv2dLayer", [] {
    Rng rng(1041);
    Conv2dLayer module(2, 3, 3, rng, /*stride=*/2, /*padding=*/1);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({1, 2, 5, 5}, -1.0f, 1.0f, 1042), 1043);
  });
  add("Module_MultiHeadSelfAttention", [] {
    Rng rng(1051);
    MultiHeadSelfAttention module(8, 2, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({1, 4, 8}, -1.0f, 1.0f, 1052), 1053);
  });
  add("Module_TransformerEncoderBlock", [] {
    Rng rng(1061);
    TransformerEncoderBlock module(8, 2, 16, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({1, 3, 8}, -1.0f, 1.0f, 1062), 1063);
  });
  add("RevIn_normalize", [] {
    return CheckScalarized(
        [](const Variable& x) {
          return RevInNormalize(x, ComputeRevInStats(x));
        },
        Uniform({2, 2, 6}, -1.0f, 1.0f, 1072), 1073);
  });
  add("RevIn_roundtrip", [] {
    return CheckScalarized(
        [](const Variable& x) {
          const RevInStats stats = ComputeRevInStats(x);
          return RevInDenormalize(RevInNormalize(x, stats), stats);
        },
        Uniform({2, 2, 6}, -1.0f, 1.0f, 1082), 1083);
  });

  // Losses are scalar-valued already; no probe needed.
  add("Loss_Mse", [] {
    const Variable target(Uniform({2, 3, 4}, -1.0f, 1.0f, 1091));
    return CheckGradient(
        [&](const Variable& x) { return MseLoss(x, target); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1092));
  });
  add("Loss_Mae", [] {
    // Prediction = target + offsets of magnitude >= 0.3: the |error| kink at
    // 0 stays out of reach of the finite-difference step.
    const Tensor target = Uniform({2, 3, 4}, -1.0f, 1.0f, 1101);
    const Tensor offset = AwayFromZero({2, 3, 4}, 1102);
    Tensor x0 = target.Clone();
    for (int64_t i = 0; i < x0.numel(); ++i) {
      x0.data()[i] += offset.data()[i];
    }
    const Variable target_var(target);
    return CheckGradient(
        [&](const Variable& x) { return MaeLoss(x, target_var); }, x0);
  });
  add("Loss_MaskedMse", [] {
    const Variable target(Uniform({2, 3, 4}, -1.0f, 1.0f, 1111));
    Tensor mask = Tensor::Zeros({2, 3, 4});
    for (int64_t i = 0; i < mask.numel(); i += 2) mask.data()[i] = 1.0f;
    return CheckGradient(
        [&](const Variable& x) { return MaskedMseLoss(x, target, mask); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1112));
  });
  add("Loss_Huber_quadratic", [] {
    const Tensor target = Uniform({2, 3, 4}, -1.0f, 1.0f, 1121);
    Tensor x0 = target.Clone();
    Rng rng(1122);
    // Errors in [0.3, 0.7]: inside the quadratic region of delta = 1, away
    // from both the zero kink and the delta transition.
    for (int64_t i = 0; i < x0.numel(); ++i) {
      const float e = rng.Uniform(0.3f, 0.7f);
      x0.data()[i] += rng.Bernoulli(0.5) ? e : -e;
    }
    const Variable target_var(target);
    return CheckGradient(
        [&](const Variable& x) { return HuberLoss(x, target_var, 1.0f); }, x0);
  });
  add("Loss_Huber_linear", [] {
    const Tensor target = Uniform({2, 3, 4}, -1.0f, 1.0f, 1131);
    Tensor x0 = target.Clone();
    Rng rng(1132);
    // Errors in [1.3, 1.7]: the linear region of delta = 1.
    for (int64_t i = 0; i < x0.numel(); ++i) {
      const float e = rng.Uniform(1.3f, 1.7f);
      x0.data()[i] += rng.Bernoulli(0.5) ? e : -e;
    }
    const Variable target_var(target);
    return CheckGradient(
        [&](const Variable& x) { return HuberLoss(x, target_var, 1.0f); }, x0);
  });
  add("Loss_CrossEntropy", [] {
    const Tensor labels({3}, {0.0f, 3.0f, 1.0f});
    return CheckGradient(
        [&](const Variable& x) { return CrossEntropyLoss(x, labels); },
        Uniform({3, 4}, -2.0f, 2.0f, 1141));
  });

  // MSD-Mixer building blocks and the full model.
  add("Core_MlpBlock", [] {
    Rng rng(1151);
    MlpBlock module(4, 8, /*drop_path=*/0.2f, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1152), 1153);
  });
  add("Core_AxisMlpBlock", [] {
    Rng rng(1161);
    AxisMlpBlock module(/*axis=*/1, /*features=*/3, /*hidden=*/6,
                        /*drop_path=*/0.0f, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({2, 3, 4}, -1.0f, 1.0f, 1162), 1163);
  });
  add("Core_PatchEncoder", [] {
    Rng rng(1171);
    PatchCoderDims dims;
    dims.channels = 2;
    dims.num_patches = 3;
    dims.patch_size = 4;
    dims.model_dim = 5;
    dims.hidden_dim = 6;
    PatchEncoder module(dims, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({1, 2, 3, 4}, -1.0f, 1.0f, 1172), 1173);
  });
  add("Core_PatchDecoder", [] {
    Rng rng(1181);
    PatchCoderDims dims;
    dims.channels = 2;
    dims.num_patches = 3;
    dims.patch_size = 4;
    dims.model_dim = 5;
    dims.hidden_dim = 6;
    PatchDecoder module(dims, rng);
    module.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return module.Forward(x); },
        Uniform({1, 2, 3, 5}, -1.0f, 1.0f, 1182), 1183);
  });
  add("Core_MsdMixer_forecast", [] {
    Rng rng(1191);
    MsdMixerConfig config;
    config.input_length = 8;
    config.channels = 2;
    config.patch_sizes = {4, 2};
    config.model_dim = 4;
    config.hidden_dim = 8;
    config.drop_path = 0.0f;
    config.task = TaskType::kForecast;
    config.horizon = 4;
    MsdMixer model(config, rng);
    model.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return model.Run(x).prediction; },
        Uniform({1, 2, 8}, -1.0f, 1.0f, 1192), 1193);
  });
  add("Core_MsdMixer_residual", [] {
    Rng rng(1201);
    MsdMixerConfig config;
    config.input_length = 8;
    config.channels = 2;
    config.patch_sizes = {4, 2};
    config.model_dim = 4;
    config.hidden_dim = 8;
    config.drop_path = 0.0f;
    config.task = TaskType::kForecast;
    config.horizon = 4;
    MsdMixer model(config, rng);
    model.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return model.Run(x).residual; },
        Uniform({1, 2, 8}, -1.0f, 1.0f, 1202), 1203);
  });
  add("Core_MsdMixer_classification", [] {
    Rng rng(1211);
    MsdMixerConfig config;
    config.input_length = 8;
    config.channels = 2;
    config.patch_sizes = {4, 2};
    config.model_dim = 4;
    config.hidden_dim = 8;
    config.drop_path = 0.0f;
    config.task = TaskType::kClassification;
    config.num_classes = 3;
    MsdMixer model(config, rng);
    model.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return model.Run(x).prediction; },
        Uniform({1, 2, 8}, -1.0f, 1.0f, 1212), 1213);
  });
  add("Core_MsdMixer_reconstruction", [] {
    Rng rng(1221);
    MsdMixerConfig config;
    config.input_length = 8;
    config.channels = 2;
    config.patch_sizes = {4, 2};
    config.model_dim = 4;
    config.hidden_dim = 8;
    config.drop_path = 0.0f;
    config.task = TaskType::kReconstruction;
    MsdMixer model(config, rng);
    model.SetTraining(false);
    return CheckScalarized(
        [&](const Variable& x) { return model.Run(x).prediction; },
        Uniform({1, 2, 8}, -1.0f, 1.0f, 1222), 1223);
  });
}

std::vector<SweepCase> BuildCases() {
  std::vector<SweepCase> cases;
  AddOpCases(&cases);
  AddModuleCases(&cases);
  return cases;
}

class GradcheckSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GradcheckSweep, AnalyticMatchesNumeric) {
  const GradCheckResult result = GetParam().run();
  EXPECT_TRUE(result.ok) << GetParam().name << ": " << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    All, GradcheckSweep, ::testing::ValuesIn(BuildCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace msd
