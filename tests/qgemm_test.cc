// Int8 quantized GEMM kernel tests (tensor/qgemm.h, docs/PERFORMANCE.md):
// quantizer round-trip properties, the packed kernel against a naive integer
// reference across edge geometries, bit-identity across thread counts, and
// — satellite coverage — the fp32 gemm::GemmPrepacked against a triple-loop
// reference on tile- and block-boundary shapes.
#include "tensor/qgemm.h"

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/parallel.h"
#include "tensor/gemm.h"

namespace msd {
namespace {

std::vector<float> RandomVec(size_t n, uint32_t seed, float scale = 1.0f) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, scale);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

// The reference integer pipeline: quantize exactly like the production
// quantizers (same expressions), accumulate in plain int32 ascending-k
// order, dequantize with the same per-element float expression. The packed
// kernel must match this bit for bit on identity/relu/tanh/sigmoid epilogues
// (gelu uses a vectorized approximation in the quantized epilogue and is
// tolerance-checked instead).
int8_t RefQuant(float v, float inv_scale) {
  if (inv_scale == 0.0f) return 0;
  float q = std::nearbyintf(v * inv_scale);
  if (q > 127.0f) q = 127.0f;
  if (q < -127.0f) q = -127.0f;
  return static_cast<int8_t>(q);
}

void RefQGemm(const std::vector<float>& a, const std::vector<float>& b,
              int64_t m, int64_t k, int64_t n, const float* bias,
              gemm::Activation act, std::vector<float>* c) {
  // Per-column weight quant.
  std::vector<float> b_scale(static_cast<size_t>(n), 0.0f);
  for (int64_t j = 0; j < n; ++j) {
    float mx = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::fabs(b[static_cast<size_t>(kk * n + j)]));
    }
    b_scale[static_cast<size_t>(j)] = mx / 127.0f;
  }
  std::vector<int8_t> bq(static_cast<size_t>(k * n));
  for (int64_t j = 0; j < n; ++j) {
    const float inv =
        b_scale[static_cast<size_t>(j)] > 0.0f
            ? 1.0f / b_scale[static_cast<size_t>(j)]
            : 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      bq[static_cast<size_t>(kk * n + j)] =
          RefQuant(b[static_cast<size_t>(kk * n + j)], inv);
    }
  }
  // Per-row activation quant.
  std::vector<float> a_scale(static_cast<size_t>(m), 0.0f);
  std::vector<int8_t> aq(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m; ++i) {
    float mx = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::fabs(a[static_cast<size_t>(i * k + kk)]));
    }
    a_scale[static_cast<size_t>(i)] = mx / 127.0f;
    const float inv = mx > 0.0f ? 127.0f / mx : 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      aq[static_cast<size_t>(i * k + kk)] =
          RefQuant(a[static_cast<size_t>(i * k + kk)], inv);
    }
  }
  c->assign(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> pre(static_cast<size_t>(n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<int32_t>(aq[static_cast<size_t>(i * k + kk)]) *
               static_cast<int32_t>(bq[static_cast<size_t>(kk * n + j)]);
      }
      pre[static_cast<size_t>(j)] = static_cast<float>(acc) *
                                    a_scale[static_cast<size_t>(i)] *
                                    b_scale[static_cast<size_t>(j)];
    }
    float* row = c->data() + i * n;
    std::memcpy(row, pre.data(), static_cast<size_t>(n) * sizeof(float));
    gemm::EpilogueBiasAct(row, nullptr, 1, n, bias, act);
  }
}

// Runs the production pipeline (quantize weights + activations, packed
// kernel) for one geometry.
void RunQGemm(const std::vector<float>& a, const std::vector<float>& b,
              int64_t m, int64_t k, int64_t n, const float* bias,
              gemm::Activation act, std::vector<float>* c) {
  std::vector<int8_t> bq(static_cast<size_t>(qgemm::PackedQuantBInt8s(k, n)));
  std::vector<float> bs(static_cast<size_t>(qgemm::QuantBScaleFloats(n)));
  qgemm::QuantizeWeightsPerChannel(b.data(), k, n, bq.data(), bs.data());
  std::vector<int16_t> aq(static_cast<size_t>(m * qgemm::QuantARowInt16s(k)));
  std::vector<float> as(static_cast<size_t>(m));
  qgemm::QuantizeActivationsPerRow(a.data(), m, k, aq.data(), as.data());
  c->assign(static_cast<size_t>(m * n), -1234.5f);  // every element written
  qgemm::QGemmPrepacked(aq.data(), as.data(), bq.data(), bs.data(), c->data(),
                        m, k, n, bias, act);
}

// ---- Quantizer properties ---------------------------------------------------

TEST(QuantizerTest, WeightScalesAreColumnAbsmaxOver127) {
  const int64_t k = 13, n = 11;
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), 5, 2.0f);
  std::vector<int8_t> packed(
      static_cast<size_t>(qgemm::PackedQuantBInt8s(k, n)));
  std::vector<float> scales(static_cast<size_t>(qgemm::QuantBScaleFloats(n)));
  qgemm::QuantizeWeightsPerChannel(b.data(), k, n, packed.data(),
                                   scales.data());
  for (int64_t j = 0; j < n; ++j) {
    float mx = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      mx = std::max(mx, std::fabs(b[static_cast<size_t>(kk * n + j)]));
    }
    EXPECT_FLOAT_EQ(scales[static_cast<size_t>(j)], mx / 127.0f) << j;
  }
  // Padding columns carry scale 0.
  for (int64_t j = n; j < qgemm::QuantBScaleFloats(n); ++j) {
    EXPECT_EQ(scales[static_cast<size_t>(j)], 0.0f);
  }
}

TEST(QuantizerTest, ActivationRoundTripWithinHalfStep) {
  const int64_t m = 7, k = 29;
  std::vector<float> a = RandomVec(static_cast<size_t>(m * k), 6, 3.0f);
  std::vector<int16_t> aq(static_cast<size_t>(m * qgemm::QuantARowInt16s(k)));
  std::vector<float> as(static_cast<size_t>(m));
  qgemm::QuantizeActivationsPerRow(a.data(), m, k, aq.data(), as.data());
  const int64_t row_stride = qgemm::QuantARowInt16s(k);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float v = a[static_cast<size_t>(i * k + kk)];
      const float deq =
          static_cast<float>(aq[static_cast<size_t>(i * row_stride + kk)]) *
          as[static_cast<size_t>(i)];
      // |error| <= scale/2 for values inside the clamp range.
      EXPECT_LE(std::fabs(deq - v), as[static_cast<size_t>(i)] * 0.5f + 1e-7f)
          << "row " << i << " col " << kk;
      EXPECT_LE(std::abs(aq[static_cast<size_t>(i * row_stride + kk)]), 127);
    }
    // k padding inside the row stride is zero.
    for (int64_t kk = k; kk < row_stride; ++kk) {
      EXPECT_EQ(aq[static_cast<size_t>(i * row_stride + kk)], 0);
    }
  }
}

TEST(QuantizerTest, ZeroRowAndZeroColumnQuantizeToZero) {
  const int64_t m = 3, k = 9, n = 5;
  std::vector<float> a = RandomVec(static_cast<size_t>(m * k), 7);
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), 8);
  for (int64_t kk = 0; kk < k; ++kk) {
    a[static_cast<size_t>(1 * k + kk)] = 0.0f;  // zero row 1
    b[static_cast<size_t>(kk * n + 2)] = 0.0f;  // zero column 2
  }
  std::vector<float> c;
  RunQGemm(a, b, m, k, n, nullptr, gemm::Activation::kIdentity, &c);
  for (int64_t j = 0; j < n; ++j) {
    EXPECT_EQ(c[static_cast<size_t>(1 * n + j)], 0.0f) << "row 1, col " << j;
  }
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(c[static_cast<size_t>(i * n + 2)], 0.0f) << "col 2, row " << i;
  }
}

// ---- Kernel vs reference ----------------------------------------------------

struct Geometry {
  int64_t m, k, n;
};

// Edge geometries: off-tile rows (kQr=4 groups), off-panel columns (kNr=8),
// off-quad k (quads of 4), the degenerate K=1 / N=1 / M=1 shapes, and a
// paper-scale shape crossing every blocking boundary.
const Geometry kGeometries[] = {
    {1, 1, 1},   {1, 7, 1},    {2, 3, 5},     {4, 4, 8},    {5, 9, 11},
    {7, 24, 32}, {8, 128, 96}, {13, 65, 17},  {64, 256, 8}, {65, 257, 9},
    {96, 24, 32}, {33, 1, 40}, {40, 513, 1},  {128, 31, 72},
};

TEST(QGemmKernelTest, BitExactAgainstNaiveIntegerReference) {
  for (const Geometry& g : kGeometries) {
    SCOPED_TRACE("m=" + std::to_string(g.m) + " k=" + std::to_string(g.k) +
                 " n=" + std::to_string(g.n));
    std::vector<float> a =
        RandomVec(static_cast<size_t>(g.m * g.k), 11 + g.m, 1.5f);
    std::vector<float> b =
        RandomVec(static_cast<size_t>(g.k * g.n), 13 + g.n, 1.5f);
    std::vector<float> bias = RandomVec(static_cast<size_t>(g.n), 17);
    for (gemm::Activation act :
         {gemm::Activation::kIdentity, gemm::Activation::kRelu,
          gemm::Activation::kTanh, gemm::Activation::kSigmoid}) {
      std::vector<float> got, want;
      RunQGemm(a, b, g.m, g.k, g.n, bias.data(), act, &got);
      RefQGemm(a, b, g.m, g.k, g.n, bias.data(), act, &want);
      ASSERT_EQ(got.size(), want.size());
      EXPECT_EQ(std::memcmp(got.data(), want.data(),
                            got.size() * sizeof(float)),
                0)
          << "act " << static_cast<int>(act);
    }
    // No-bias identity as well (the nullptr epilogue path).
    std::vector<float> got, want;
    RunQGemm(a, b, g.m, g.k, g.n, nullptr, gemm::Activation::kIdentity, &got);
    RefQGemm(a, b, g.m, g.k, g.n, nullptr, gemm::Activation::kIdentity,
             &want);
    EXPECT_EQ(
        std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0);
  }
}

TEST(QGemmKernelTest, GeluEpilogueWithinApproximationTolerance) {
  // The quantized epilogue uses a vectorized tanh-form gelu (~3e-4 absolute
  // error vs the exact erf form the reference applies).
  const Geometry g{33, 40, 27};
  std::vector<float> a = RandomVec(static_cast<size_t>(g.m * g.k), 3, 1.5f);
  std::vector<float> b = RandomVec(static_cast<size_t>(g.k * g.n), 4, 1.5f);
  std::vector<float> bias = RandomVec(static_cast<size_t>(g.n), 5);
  std::vector<float> got, want;
  RunQGemm(a, b, g.m, g.k, g.n, bias.data(), gemm::Activation::kGelu, &got);
  RefQGemm(a, b, g.m, g.k, g.n, bias.data(), gemm::Activation::kGelu, &want);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 2e-3f) << i;
  }
}

TEST(QGemmKernelTest, BitIdenticalAcrossThreadCounts) {
  const Geometry g{197, 130, 51};  // crosses kMc=64 row tiles unevenly
  std::vector<float> a = RandomVec(static_cast<size_t>(g.m * g.k), 21, 2.0f);
  std::vector<float> b = RandomVec(static_cast<size_t>(g.k * g.n), 22, 2.0f);
  std::vector<float> bias = RandomVec(static_cast<size_t>(g.n), 23);
  std::vector<float> base;
  {
    runtime::ScopedThreads threads(1);
    RunQGemm(a, b, g.m, g.k, g.n, bias.data(), gemm::Activation::kGelu,
             &base);
  }
  for (int64_t t : {int64_t{2}, int64_t{8}}) {
    runtime::ScopedThreads threads(t);
    std::vector<float> got;
    RunQGemm(a, b, g.m, g.k, g.n, bias.data(), gemm::Activation::kGelu, &got);
    EXPECT_EQ(
        std::memcmp(got.data(), base.data(), base.size() * sizeof(float)), 0)
        << t << " threads";
  }
}

TEST(QGemmKernelTest, SaturatesExtremeValuesWithoutOverflow) {
  // Huge dynamic range: quantization saturates at ±127 and the int32
  // accumulator stays in range for k up to kMaxK by construction.
  const int64_t m = 5, k = 300, n = 9;
  std::vector<float> a = RandomVec(static_cast<size_t>(m * k), 31, 1e6f);
  std::vector<float> b = RandomVec(static_cast<size_t>(k * n), 32, 1e-6f);
  std::vector<float> got, want;
  RunQGemm(a, b, m, k, n, nullptr, gemm::Activation::kIdentity, &got);
  RefQGemm(a, b, m, k, n, nullptr, gemm::Activation::kIdentity, &want);
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0);
  for (float v : got) EXPECT_TRUE(std::isfinite(v));
}

// ---- fp32 GemmPrepacked edge geometry (satellite coverage) ------------------

void RefGemm(const std::vector<float>& a, const std::vector<float>& b,
             int64_t m, int64_t k, int64_t n, const float* bias,
             gemm::Activation act, std::vector<float>* c) {
  c->assign(static_cast<size_t>(m * n), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    float* row = c->data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      // Ascending-k accumulation — the documented determinism order.
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[static_cast<size_t>(i * k + kk)] *
               b[static_cast<size_t>(kk * n + j)];
      }
      row[j] = acc;
    }
    gemm::EpilogueBiasAct(row, nullptr, 1, n, bias, act);
  }
}

// Shapes straddling every fp32 blocking boundary: the 8x8 register tile
// (kMr=8, kNr=8), the Mc=64 row block, and the Kc=256 depth block — plus
// K=1 and N=1 degenerate panels.
const Geometry kFp32Geometries[] = {
    {1, 1, 1},    {1, 256, 1},  {7, 9, 7},     {8, 8, 8},    {9, 255, 9},
    {63, 256, 8}, {64, 257, 9}, {65, 512, 16}, {16, 1, 24},  {24, 513, 1},
    {70, 260, 23},
};

TEST(GemmPrepackedEdgeTest, MatchesNaiveReferenceAtBlockBoundaries) {
  for (const Geometry& g : kFp32Geometries) {
    SCOPED_TRACE("m=" + std::to_string(g.m) + " k=" + std::to_string(g.k) +
                 " n=" + std::to_string(g.n));
    std::vector<float> a =
        RandomVec(static_cast<size_t>(g.m * g.k), 41 + g.m);
    std::vector<float> b =
        RandomVec(static_cast<size_t>(g.k * g.n), 43 + g.n);
    std::vector<float> bias = RandomVec(static_cast<size_t>(g.n), 47);
    std::vector<float> packed(
        static_cast<size_t>(gemm::PackedBPanelFloats(g.k, g.n)));
    gemm::PackB(b.data(), g.k, g.n, packed.data());
    for (gemm::Activation act :
         {gemm::Activation::kIdentity, gemm::Activation::kRelu}) {
      std::vector<float> got(static_cast<size_t>(g.m * g.n), -99.0f);
      gemm::GemmPrepacked(a.data(), packed.data(), got.data(), g.m, g.k, g.n,
                          bias.data(), act, nullptr);
      std::vector<float> want;
      RefGemm(a, b, g.m, g.k, g.n, bias.data(), act, &want);
      for (size_t i = 0; i < got.size(); ++i) {
        // fp32 blocking reorders nothing (ascending-k contract), but FMA
        // contraction differences against the naive loop allow tiny ulp
        // drift; bound it tightly relative to the accumulation depth.
        EXPECT_NEAR(got[i], want[i],
                    2e-5f * static_cast<float>(g.k) + 1e-5f)
            << "act " << static_cast<int>(act) << " idx " << i;
      }
    }
    // Prepacked path agrees with the one-shot Gemm entry point bit for bit
    // (same kernels, same order).
    std::vector<float> one(static_cast<size_t>(g.m * g.n), 0.0f);
    std::vector<float> two(static_cast<size_t>(g.m * g.n), 0.0f);
    gemm::Gemm(a.data(), b.data(), one.data(), g.m, g.k, g.n, bias.data(),
               gemm::Activation::kIdentity, nullptr);
    gemm::GemmPrepacked(a.data(), packed.data(), two.data(), g.m, g.k, g.n,
                        bias.data(), gemm::Activation::kIdentity, nullptr);
    EXPECT_EQ(std::memcmp(one.data(), two.data(), one.size() * sizeof(float)),
              0);
  }
}

TEST(GemmPrepackedEdgeTest, BitIdenticalAcrossThreadCounts) {
  const Geometry g{130, 300, 45};  // crosses Mc and Kc blocks unevenly
  std::vector<float> a = RandomVec(static_cast<size_t>(g.m * g.k), 51);
  std::vector<float> b = RandomVec(static_cast<size_t>(g.k * g.n), 52);
  std::vector<float> packed(
      static_cast<size_t>(gemm::PackedBPanelFloats(g.k, g.n)));
  gemm::PackB(b.data(), g.k, g.n, packed.data());
  std::vector<float> base(static_cast<size_t>(g.m * g.n));
  {
    runtime::ScopedThreads threads(1);
    gemm::GemmPrepacked(a.data(), packed.data(), base.data(), g.m, g.k, g.n,
                        nullptr, gemm::Activation::kIdentity, nullptr);
  }
  for (int64_t t : {int64_t{2}, int64_t{8}}) {
    runtime::ScopedThreads threads(t);
    std::vector<float> got(static_cast<size_t>(g.m * g.n));
    gemm::GemmPrepacked(a.data(), packed.data(), got.data(), g.m, g.k, g.n,
                        nullptr, gemm::Activation::kIdentity, nullptr);
    EXPECT_EQ(
        std::memcmp(got.data(), base.data(), base.size() * sizeof(float)), 0)
        << t << " threads";
  }
}

}  // namespace
}  // namespace msd
