// Tests for the whiteness statistics (Ljung-Box, periodogram) and the
// decomposition analysis report.
#include "core/analysis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/residual_loss.h"
#include "metrics/metrics.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(LjungBoxTest, WhiteNoisePassesPeriodicFails) {
  Rng rng(1);
  Tensor noise = Tensor::RandNormal({1, 300}, 0, 1, rng);
  EXPECT_TRUE(PassesLjungBoxWhitenessTest(noise, 0, 20));

  Tensor sine({1, 300});
  for (int64_t t = 0; t < 300; ++t) {
    sine.set({0, t}, std::sin(2.0f * 3.14159265f * t / 25.0f));
  }
  EXPECT_FALSE(PassesLjungBoxWhitenessTest(sine, 0, 20));
  EXPECT_GT(LjungBoxStatistic(sine, 0, 20), LjungBoxStatistic(noise, 0, 20));
}

TEST(LjungBoxTest, StatisticGrowsWithAutocorrelation) {
  Rng rng(2);
  // AR(1) with increasing coefficient -> increasing Q.
  auto make_ar = [&](float phi) {
    Tensor t({1, 400});
    float state = 0.0f;
    Rng local(7);
    for (int64_t i = 0; i < 400; ++i) {
      state = phi * state + local.Gaussian();
      t.set({0, i}, state);
    }
    return t;
  };
  const double q_weak = LjungBoxStatistic(make_ar(0.2f), 0, 10);
  const double q_strong = LjungBoxStatistic(make_ar(0.8f), 0, 10);
  EXPECT_GT(q_strong, q_weak);
}

TEST(ChiSquaredTest, KnownCriticalValues) {
  // chi2_{0.05}(10) ~ 18.31, chi2_{0.05}(20) ~ 31.41, chi2_{0.01}(5) ~ 15.09.
  EXPECT_NEAR(ChiSquaredCriticalValue(10, 0.05), 18.31, 0.2);
  EXPECT_NEAR(ChiSquaredCriticalValue(20, 0.05), 31.41, 0.3);
  EXPECT_NEAR(ChiSquaredCriticalValue(5, 0.01), 15.09, 0.3);
}

TEST(PeriodogramTest, FindsPlantedPeriod) {
  Tensor series({1, 240});
  for (int64_t t = 0; t < 240; ++t) {
    series.set({0, t}, std::sin(2.0f * 3.14159265f * t / 24.0f) +
                           0.3f * std::sin(2.0f * 3.14159265f * t / 7.0f));
  }
  EXPECT_EQ(DominantPeriod(series, 0), 24);
  const auto power = Periodogram(series, 0);
  EXPECT_GT(power[24], power[7]);
  EXPECT_GT(power[7], power[13]);  // secondary peak beats a random period
}

TEST(PeriodogramTest, FlatSeriesHasNoPower) {
  Tensor series = Tensor::Full({1, 100}, 3.0f);
  const auto power = Periodogram(series, 0);
  for (size_t p = 2; p < power.size(); ++p) {
    EXPECT_NEAR(power[p], 0.0, 1e-6);
  }
}

TEST(AnalysisTest, ReportOnUntrainedMixerShowsStructuredResidual) {
  Rng rng(3);
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 2;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.task = TaskType::kForecast;
  config.horizon = 12;
  MsdMixer mixer(config, rng);

  Tensor window({2, 48});
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t = 0; t < 48; ++t) {
      window.set({c, t}, std::sin(2.0f * 3.14159265f * t / 12.0f + c));
    }
  }
  DecompositionReport report = AnalyzeDecomposition(mixer, window);
  ASSERT_EQ(report.components.size(), 3u);
  EXPECT_EQ(report.components[0].patch_size, 12);
  EXPECT_GT(report.input_power, 0.0);
  // Untrained: residual usually keeps visible structure.
  const std::string text = FormatDecompositionReport(report);
  EXPECT_NE(text.find("layer 1"), std::string::npos);
  EXPECT_NE(text.find("residual"), std::string::npos);
}

TEST(AnalysisTest, TrainingWithResidualLossWhitensResidual) {
  // Train briefly with the Residual Loss on a periodic series and verify the
  // report captures the improvement in explained power.
  Rng rng(4);
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 1;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.task = TaskType::kForecast;
  config.horizon = 12;
  MsdMixer mixer(config, rng);

  auto make_batch = [&](uint64_t seed) {
    Rng data_rng(seed);
    Tensor x({8, 1, 48});
    for (int64_t b = 0; b < 8; ++b) {
      const float phase = data_rng.Uniform(0.0f, 6.28f);
      for (int64_t t = 0; t < 48; ++t) {
        x.set({b, 0, t},
              std::sin(2.0f * 3.14159265f * t / 12.0f + phase) +
                  0.1f * data_rng.Gaussian());
      }
    }
    return x;
  };

  Tensor probe({1, 48});
  {
    Rng data_rng(55);
    for (int64_t t = 0; t < 48; ++t) {
      probe.set({0, t}, std::sin(2.0f * 3.14159265f * t / 12.0f) +
                            0.1f * data_rng.Gaussian());
    }
  }
  DecompositionReport before = AnalyzeDecomposition(mixer, probe);

  Adam opt(mixer.Parameters(), 3e-3f);
  for (int step = 0; step < 120; ++step) {
    opt.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(make_batch(100 + step)));
    Variable loss = ResidualLoss(out.residual);
    loss.Backward();
    opt.Step();
  }
  DecompositionReport after = AnalyzeDecomposition(mixer, probe);
  EXPECT_LT(after.residual_power, before.residual_power);
  EXPECT_GT(after.explained_power_ratio(), 0.9);
}

}  // namespace
}  // namespace msd
