// Int8 quantization pass tests (serve/plan.h CompileOptions, tensor/qgemm.h,
// docs/COMPILER.md): adoption on well-conditioned weights, calibration
// fallback on an adversarial high-dynamic-range layer, default-off fp32
// bit-identity, MSD_QUANT env resolution at session Create, quantized-output
// accuracy bounds, and bit-identity of the quantized path across thread
// counts.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"
#include "serve/plan.h"
#include "serve/session.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "quant_plan_test_" +
         std::to_string(::getpid()) + "_" + name;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

double RelFrobError(const Tensor& got, const Tensor& want) {
  double num = 0.0, den = 0.0;
  for (int64_t i = 0; i < want.numel(); ++i) {
    const double d =
        static_cast<double>(got.data()[i]) - static_cast<double>(want.data()[i]);
    num += d * d;
    den += static_cast<double>(want.data()[i]) *
           static_cast<double>(want.data()[i]);
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

// Pins an env var for a scope (session Create reads MSD_PLAN / MSD_QUANT
// once).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// ---- Plan-level pass behavior ----------------------------------------------

// A single constant-weight Linear: the minimal plan with one prepacked GEMM
// candidate.
TEST(QuantPassTest, AdoptsWellConditionedGemm) {
  Rng rng(3);
  const Tensor w = Tensor::RandNormal({24, 16}, 0.0f, 1.0f, rng);
  const Tensor bias = Tensor::RandNormal({16}, 0.0f, 0.5f, rng);
  const Tensor example = Tensor::RandNormal({8, 24}, 0.0f, 1.0f, rng);
  auto fwd = [&](const Tensor& in) {
    return MatMulEx(in, w, bias, gemm::Activation::kGelu);
  };
  std::string why;
  serve::CompileOptions options;
  options.quantize = true;
  auto plan = serve::CompiledPlan::Compile(fwd, example, &why, options);
  ASSERT_NE(plan, nullptr) << why;
  EXPECT_EQ(plan->stats().num_quantized, 1) << plan->DebugString();
  EXPECT_EQ(plan->stats().num_quant_fallbacks, 0);
  EXPECT_GT(plan->stats().quant_arena_bytes, 0);
  // Output within the calibration gate of the interpreted oracle.
  Tensor want = fwd(example);
  Tensor got = plan->Execute(example);
  EXPECT_LT(RelFrobError(got, want), options.quant_max_rel_error);
  // The schedule dump announces the rewrite.
  EXPECT_NE(plan->DebugString().find("int8"), std::string::npos);
}

// Adversarial high-dynamic-range layer: a weight column mixing +/-1e6
// entries that cancel exactly on this input with small entries that carry
// the real signal. Per-channel quantization flattens the small entries to
// zero, the quantized output loses the signal entirely, and the calibration
// gate must keep the step fp32.
TEST(QuantPassTest, FallsBackOnHighDynamicRangeLayer) {
  const int64_t k = 8, n = 4, m = 6;
  Tensor w = Tensor::Zeros({k, n});
  Rng rng(5);
  Tensor small = Tensor::RandNormal({k, n}, 0.0f, 0.01f, rng);
  for (int64_t i = 0; i < w.numel(); ++i) w.data()[i] = small.data()[i];
  for (int64_t j = 0; j < n; ++j) {
    w.data()[0 * n + j] = 1e6f;   // row 0: huge positive
    w.data()[1 * n + j] = -1e6f;  // row 1: huge negative, cancels row 0
  }
  // Example whose first two features are identical, so the 1e6 contributions
  // cancel exactly and the true output is the small-weight signal.
  Tensor example = Tensor::RandNormal({m, k}, 0.0f, 1.0f, rng);
  for (int64_t i = 0; i < m; ++i) {
    example.data()[i * k + 1] = example.data()[i * k + 0];
  }
  auto fwd = [&](const Tensor& in) {
    return MatMulEx(in, w, Tensor(), gemm::Activation::kIdentity);
  };
  std::string why;
  serve::CompileOptions options;
  options.quantize = true;
  auto plan = serve::CompiledPlan::Compile(fwd, example, &why, options);
  ASSERT_NE(plan, nullptr) << why;
  EXPECT_EQ(plan->stats().num_quantized, 0) << plan->DebugString();
  EXPECT_EQ(plan->stats().num_quant_fallbacks, 1);
  // The fallen-back plan still IS the validated fp32 plan: bit-identical to
  // the interpreted forward.
  EXPECT_TRUE(BitIdentical(plan->Execute(example), fwd(example)));
}

// Default options must not change a single bit: Compile without options and
// Compile with the default CompileOptions produce memcmp-identical outputs
// and no quantization stats.
TEST(QuantPassTest, DefaultOptionsStayFp32BitIdentical) {
  Rng rng(7);
  const Tensor w = Tensor::RandNormal({16, 12}, 0.0f, 1.0f, rng);
  const Tensor example = Tensor::RandNormal({4, 16}, 0.0f, 1.0f, rng);
  auto fwd = [&](const Tensor& in) {
    return MatMulEx(in, w, Tensor(), gemm::Activation::kRelu);
  };
  std::string why;
  auto implicit = serve::CompiledPlan::Compile(fwd, example, &why);
  ASSERT_NE(implicit, nullptr) << why;
  auto explicit_default = serve::CompiledPlan::Compile(
      fwd, example, &why, serve::CompileOptions());
  ASSERT_NE(explicit_default, nullptr) << why;
  EXPECT_EQ(implicit->stats().num_quantized, 0);
  EXPECT_EQ(implicit->stats().num_quant_fallbacks, 0);
  EXPECT_EQ(implicit->stats().quant_arena_bytes, 0);
  EXPECT_TRUE(BitIdentical(implicit->Execute(example),
                           explicit_default->Execute(example)));
  EXPECT_TRUE(BitIdentical(implicit->Execute(example), fwd(example)));
}

// The quantized path is deterministic: bit-identical outputs for
// MSD_THREADS 1, 2, and 8, and across repeated Execute calls.
TEST(QuantPassTest, QuantizedExecuteBitIdenticalAcrossThreads) {
  Rng rng(11);
  const Tensor w = Tensor::RandNormal({48, 40}, 0.0f, 1.0f, rng);
  const Tensor bias = Tensor::RandNormal({40}, 0.0f, 0.5f, rng);
  const Tensor example = Tensor::RandNormal({130, 48}, 0.0f, 1.0f, rng);
  auto fwd = [&](const Tensor& in) {
    return MatMulEx(in, w, bias, gemm::Activation::kGelu);
  };
  std::string why;
  serve::CompileOptions options;
  options.quantize = true;
  auto plan = serve::CompiledPlan::Compile(fwd, example, &why, options);
  ASSERT_NE(plan, nullptr) << why;
  ASSERT_EQ(plan->stats().num_quantized, 1) << plan->DebugString();
  Tensor base;
  {
    runtime::ScopedThreads threads(1);
    base = plan->Execute(example);
    EXPECT_TRUE(BitIdentical(plan->Execute(example), base)) << "repeat";
  }
  for (int64_t t : {int64_t{2}, int64_t{8}}) {
    runtime::ScopedThreads threads(t);
    EXPECT_TRUE(BitIdentical(plan->Execute(example), base))
        << t << " threads";
  }
}

// ---- Session-level integration ---------------------------------------------

MsdMixerConfig SmallConfig() {
  MsdMixerConfig config;
  config.input_length = 32;
  config.channels = 2;
  config.patch_sizes = {8, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 8;
  return config;
}

std::unique_ptr<serve::InferenceSession> MakeSession(bool quantize,
                                                     const std::string& tag) {
  MsdMixerConfig config = SmallConfig();
  Rng rng(17);
  MsdMixer mixer(config, rng);
  const std::string path = TempPath("quant_" + tag + ".msdckpt");
  EXPECT_TRUE(SaveCheckpoint(mixer, path).ok());
  serve::InferenceSessionConfig sc;
  sc.model = config;
  sc.max_batch = 2;
  sc.quantize = quantize;
  auto session = serve::InferenceSession::Create(sc, path);
  std::remove(path.c_str());
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(session).value();
}

TEST(QuantSessionTest, ConfigQuantizeAdoptsStepsWithinAccuracyBound) {
  ScopedEnv plan_env("MSD_PLAN", "1");
  ScopedEnv quant_env("MSD_QUANT", nullptr);  // config decides
  auto fp32 = MakeSession(/*quantize=*/false, "fp32");
  auto quant = MakeSession(/*quantize=*/true, "int8");
  EXPECT_FALSE(fp32->quantized());
  EXPECT_TRUE(quant->quantized());
  const serve::CompiledPlan* plan = quant->plan_for(2);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->stats().num_quantized, 0) << plan->DebugString();
  Rng rng(23);
  const Tensor batch = Tensor::RandNormal({2, 2, 32}, 0.0f, 1.0f, rng);
  auto f = fp32->PredictBatch(batch);
  auto q = quant->PredictBatch(batch);
  ASSERT_TRUE(f.ok() && q.ok());
  // End-to-end drift across the whole quantized mixer stays in the few-
  // percent band the per-step gate implies.
  EXPECT_LT(RelFrobError(q.value(), f.value()), 0.05);
  // And the quantized session is itself deterministic.
  auto q2 = quant->PredictBatch(batch);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(BitIdentical(q.value(), q2.value()));
}

TEST(QuantSessionTest, EnvZeroOverridesConfigAndStaysBitIdenticalToFp32) {
  ScopedEnv plan_env("MSD_PLAN", "1");
  Rng rng(29);
  const Tensor batch = Tensor::RandNormal({2, 2, 32}, 0.0f, 1.0f, rng);
  Tensor fp32_out;
  {
    ScopedEnv quant_env("MSD_QUANT", nullptr);
    auto fp32 = MakeSession(/*quantize=*/false, "base");
    fp32_out = fp32->PredictBatch(batch).value();
  }
  ScopedEnv quant_env("MSD_QUANT", "0");
  auto pinned = MakeSession(/*quantize=*/true, "pinned");
  EXPECT_FALSE(pinned->quantized());
  ASSERT_NE(pinned->plan_for(2), nullptr);
  EXPECT_EQ(pinned->plan_for(2)->stats().num_quantized, 0);
  auto out = pinned->PredictBatch(batch);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(BitIdentical(out.value(), fp32_out));
}

TEST(QuantSessionTest, EnvOneForcesQuantizationOverConfig) {
  ScopedEnv plan_env("MSD_PLAN", "1");
  ScopedEnv quant_env("MSD_QUANT", "1");
  auto session = MakeSession(/*quantize=*/false, "forced");
  EXPECT_TRUE(session->quantized());
  ASSERT_NE(session->plan_for(2), nullptr);
  EXPECT_GT(session->plan_for(2)->stats().num_quantized, 0);
}

TEST(QuantSessionTest, QuantCountersAndGaugePublished) {
  ScopedEnv plan_env("MSD_PLAN", "1");
  ScopedEnv quant_env("MSD_QUANT", nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const int64_t steps_before =
      registry.GetCounter("serve/quant_steps").value();
  auto session = MakeSession(/*quantize=*/true, "counters");
  ASSERT_TRUE(session->quantized());
  EXPECT_GT(registry.GetCounter("serve/quant_steps").value(), steps_before);
  EXPECT_GT(registry.GetGauge("serve/quant_arena_bytes").value(), 0.0);
}

}  // namespace
}  // namespace msd
