// Tests for CSV time-series ingestion.
#include "data/csv.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(CsvTest, ParsesHeaderAndTimestampColumn) {
  const std::string content =
      "date,load,temp\n"
      "2020-01-01,1.5,20\n"
      "2020-01-02,2.5,21\n"
      "2020-01-03,3.5,22\n";
  auto result = ParseCsvSeries(content);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CsvSeries& series = result.value();
  EXPECT_EQ(series.values.shape(), (Shape{2, 3}));
  EXPECT_EQ(series.channel_names,
            (std::vector<std::string>{"load", "temp"}));
  EXPECT_EQ(series.values.at({0, 0}), 1.5f);
  EXPECT_EQ(series.values.at({1, 2}), 22.0f);
}

TEST(CsvTest, ParsesHeaderlessNumericFile) {
  auto result = ParseCsvSeries("1,2\n3,4\n5,6\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().values.shape(), (Shape{2, 3}));
  EXPECT_TRUE(result.value().channel_names.empty());
  EXPECT_EQ(result.value().values.at({1, 1}), 4.0f);
}

TEST(CsvTest, EmptyCellsBecomeNaN) {
  auto result = ParseCsvSeries("a,b\n1,\n2,3\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isnan(result.value().values.at({1, 0})));
  EXPECT_EQ(result.value().values.at({1, 1}), 3.0f);
}

TEST(CsvTest, WindowsLineEndingsAndSpaces) {
  auto result = ParseCsvSeries("x , y\r\n 1 , 2 \r\n 3 , 4 \r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().channel_names[0], "x");
  EXPECT_EQ(result.value().values.at({1, 1}), 4.0f);
}

TEST(CsvTest, RaggedRowRejected) {
  auto result = ParseCsvSeries("1,2\n3\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ragged"), std::string::npos);
}

TEST(CsvTest, NonNumericDataCellRejected) {
  auto result = ParseCsvSeries("a,b\n1,2\n1,oops\n");
  EXPECT_FALSE(result.ok());
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsvSeries("").ok());
  EXPECT_FALSE(ParseCsvSeries("only,a,header\n").ok());
}

TEST(CsvTest, FileRoundTrip) {
  Rng rng(1);
  Tensor series = Tensor::RandNormal({3, 10}, 0, 1, rng);
  const std::string path = ::testing::TempDir() + "/series_roundtrip.csv";
  Status wrote = WriteCsvSeries(series, {"a", "b", "c"}, path);
  ASSERT_TRUE(wrote.ok()) << wrote.ToString();
  auto result = ReadCsvSeries(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().channel_names,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(AllClose(result.value().values, series, 1e-4f, 1e-4f));
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto result = ReadCsvSeries("/nonexistent/file.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, WriteRejectsBadShapes) {
  EXPECT_FALSE(WriteCsvSeries(Tensor::Ones({4}), {}, "/tmp/x.csv").ok());
  EXPECT_FALSE(
      WriteCsvSeries(Tensor::Ones({2, 3}), {"only-one"}, "/tmp/x.csv").ok());
}

}  // namespace
}  // namespace msd
