// Tests for the synthetic workload generators: determinism, structural
// properties (seasonality, random-walk behaviour, anomaly labeling, class
// separability proxies).
#include "datagen/series_builder.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/anomaly_gen.h"
#include "datagen/classification_gen.h"
#include "datagen/long_term.h"
#include "datagen/m4like.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(SeriesBuilderTest, DeterministicFromSeed) {
  SeriesConfig config = LongTermConfig(LongTermDataset::kEttH1, 3);
  Tensor a = GenerateSeries(config);
  Tensor b = GenerateSeries(config);
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

TEST(SeriesBuilderTest, SeedChangesOutput) {
  Tensor a = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 3));
  Tensor b = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 4));
  EXPECT_FALSE(AllClose(a, b, 0.0f, 0.0f));
}

TEST(SeriesBuilderTest, PureSineHasExpectedPeriodicity) {
  ChannelSpec spec;
  spec.seasonals = {{24.0, 1.0, 0.0, 1}};
  spec.noise_sigma = 0.0;
  Rng rng(1);
  std::vector<float> ch = GenerateChannel(spec, 240, rng);
  for (int64_t t = 0; t < 216; ++t) {
    EXPECT_NEAR(ch[static_cast<size_t>(t)], ch[static_cast<size_t>(t + 24)],
                1e-4f);
  }
}

TEST(SeriesBuilderTest, TrendAccumulates) {
  ChannelSpec spec;
  spec.trend_slope = 0.1;
  spec.noise_sigma = 0.0;
  Rng rng(1);
  std::vector<float> ch = GenerateChannel(spec, 100, rng);
  EXPECT_NEAR(ch[99] - ch[0], 9.9f, 1e-3f);
}

TEST(SeriesBuilderTest, ChannelMixCouplesChannels) {
  SeriesConfig config;
  config.length = 500;
  config.seed = 5;
  config.channel_mix = 0.8;
  for (int i = 0; i < 4; ++i) {
    ChannelSpec spec;
    spec.seasonals = {{50.0 + 17.0 * i, 1.0, 0.3 * i, 1}};
    spec.noise_sigma = 0.05;
    config.channels.push_back(spec);
  }
  Tensor mixed = GenerateSeries(config);
  config.channel_mix = 0.0;
  Tensor raw = GenerateSeries(config);
  // With heavy mixing, channel 0 deviates strongly from its unmixed self.
  Tensor c0_mixed = Slice(mixed, 0, 0, 1);
  Tensor c0_raw = Slice(raw, 0, 0, 1);
  EXPECT_GT(MaxAbsDiff(c0_mixed, c0_raw), 0.3f);
}

TEST(LongTermConfigTest, AllDatasetsGenerate) {
  for (LongTermDataset ds : AllLongTermDatasets()) {
    SeriesConfig config = LongTermConfig(ds, 1);
    Tensor series = GenerateSeries(config);
    EXPECT_EQ(series.rank(), 2) << LongTermDatasetName(ds);
    EXPECT_GE(series.dim(0), 7) << LongTermDatasetName(ds);
    EXPECT_GE(series.dim(1), 2048) << LongTermDatasetName(ds);
    EXPECT_FALSE(HasNonFinite(series)) << LongTermDatasetName(ds);
    EXPECT_GT(LongTermDominantPeriod(ds), 0);
  }
}

TEST(LongTermConfigTest, SeasonalDatasetsHavePeriodicAcf) {
  // ETTh1's ACF should peak near lag 24; Exchange's should decay like a
  // random walk (no periodic bump).
  Tensor etth1 = GenerateSeries(LongTermConfig(LongTermDataset::kEttH1, 2));
  Tensor window = Slice(etth1, 1, 0, 480);
  Tensor acf = AutocorrelationMatrix(window);
  // Average over channels at lag 24 vs lag 12 (off-period).
  double lag24 = 0.0;
  double lag12 = 0.0;
  for (int64_t c = 0; c < acf.dim(0); ++c) {
    lag24 += acf.at({c, 23});
    lag12 += acf.at({c, 11});
  }
  EXPECT_GT(lag24, lag12 + 0.5 * acf.dim(0) * 0.1);
}

TEST(LongTermConfigTest, ExchangeIsRandomWalkLike) {
  Tensor exch = GenerateSeries(LongTermConfig(LongTermDataset::kExchange, 2));
  // First differences of a random walk are ~white noise: their lag-1 ACF is
  // near zero while the level series is highly autocorrelated.
  Tensor c0 = Slice(exch, 0, 0, 1);
  Tensor window = Slice(c0, 1, 0, 512);
  Tensor acf_level = AutocorrelationMatrix(window);
  EXPECT_GT(acf_level.at({0, 0}), 0.9f);
  Tensor diff = Sub(Slice(window, 1, 1, 511), Slice(window, 1, 0, 511));
  Tensor acf_diff = AutocorrelationMatrix(diff);
  EXPECT_LT(std::fabs(acf_diff.at({0, 0})), 0.25f);
}

TEST(M4LikeTest, SubsetsMatchPaperHorizons) {
  const auto subsets = DefaultM4Subsets();
  ASSERT_EQ(subsets.size(), 6u);
  EXPECT_EQ(subsets[0].name, "Yearly");
  EXPECT_EQ(subsets[0].horizon, 6);
  EXPECT_EQ(subsets[1].horizon, 8);
  EXPECT_EQ(subsets[2].horizon, 18);
  EXPECT_EQ(subsets[3].horizon, 13);
  EXPECT_EQ(subsets[4].horizon, 14);
  EXPECT_EQ(subsets[5].horizon, 48);
  EXPECT_EQ(subsets[5].period, 24);
}

TEST(M4LikeTest, SeriesArePositiveAndDeterministic) {
  const auto subsets = DefaultM4Subsets();
  for (const auto& spec : subsets) {
    auto series = GenerateM4Like(spec, 9);
    ASSERT_EQ(series.size(), static_cast<size_t>(spec.num_series));
    for (const auto& s : series) {
      EXPECT_EQ(static_cast<int64_t>(s.history.size()), spec.history_length);
      EXPECT_EQ(static_cast<int64_t>(s.future.size()), spec.horizon);
      for (float v : s.history) EXPECT_GT(v, 0.0f);
      for (float v : s.future) EXPECT_GT(v, 0.0f);
    }
    auto again = GenerateM4Like(spec, 9);
    EXPECT_EQ(again[0].history, series[0].history);
  }
}

TEST(AnomalyGenTest, AllDatasetsGenerateWithLabels) {
  for (AnomalyDataset ds : AllAnomalyDatasets()) {
    AnomalyData data = GenerateAnomalyDataset(ds, 3);
    EXPECT_EQ(data.train.rank(), 2);
    EXPECT_EQ(data.test.rank(), 2);
    EXPECT_EQ(data.train.dim(0), data.test.dim(0));
    EXPECT_EQ(static_cast<int64_t>(data.labels.size()), data.test.dim(1));
    int64_t anomalous = 0;
    for (int v : data.labels) anomalous += v;
    // Some but not most points are anomalous.
    EXPECT_GT(anomalous, 20) << AnomalyDatasetName(ds);
    EXPECT_LT(anomalous, data.test.dim(1) / 2) << AnomalyDatasetName(ds);
  }
}

TEST(AnomalyGenTest, AnomalousRegionsDeviateFromNormal) {
  AnomalyData data = GenerateAnomalyDataset(AnomalyDataset::kSmd, 4);
  // Regenerate the same underlying series without injection by reusing the
  // clean training stats: anomalous steps should have larger deviation from
  // channel means than normal steps on average.
  Tensor mean = Mean(data.train, {1}, true);
  Tensor dev = Abs(Sub(data.test, mean));
  Tensor per_step = Mean(dev, {0}, false);
  double normal_dev = 0.0;
  double anomaly_dev = 0.0;
  int64_t n_normal = 0;
  int64_t n_anomaly = 0;
  for (int64_t t = 0; t < per_step.numel(); ++t) {
    if (data.labels[static_cast<size_t>(t)] == 1) {
      anomaly_dev += per_step.data()[t];
      ++n_anomaly;
    } else {
      normal_dev += per_step.data()[t];
      ++n_normal;
    }
  }
  EXPECT_GT(anomaly_dev / n_anomaly, normal_dev / n_normal);
}

TEST(ClassificationGenTest, SubsetProfiles) {
  const auto subsets = DefaultClassificationSubsets();
  ASSERT_EQ(subsets.size(), 10u);
  std::set<std::string> names;
  for (const auto& s : subsets) names.insert(s.name);
  EXPECT_TRUE(names.count("AWR"));
  EXPECT_TRUE(names.count("UWGL"));
  EXPECT_EQ(subsets[0].channels, 9);  // AWR
}

TEST(ClassificationGenTest, BalancedAndDeterministic) {
  ClassificationSubset subset{"toy", 3, 64, 4, 80, 40, 0.5};
  ClassificationData data = GenerateClassificationData(subset, 5);
  ASSERT_EQ(data.train_x.size(), 80u);
  ASSERT_EQ(data.test_x.size(), 40u);
  std::vector<int64_t> counts(4, 0);
  for (int64_t y : data.train_y) counts[static_cast<size_t>(y)]++;
  for (int64_t c : counts) EXPECT_EQ(c, 20);
  ClassificationData again = GenerateClassificationData(subset, 5);
  EXPECT_TRUE(AllClose(again.train_x[0], data.train_x[0], 0.0f, 0.0f));
}

TEST(ClassificationGenTest, ClassesAreSeparableByTemplateCorrelation) {
  // A nearest-centroid check: samples should correlate more with their own
  // class mean than with other class means (signal exists to be learned).
  ClassificationSubset subset{"toy", 3, 96, 3, 90, 45, 0.4};
  ClassificationData data = GenerateClassificationData(subset, 6);
  std::vector<Tensor> centroids;
  for (int64_t k = 0; k < 3; ++k) {
    Tensor acc = Tensor::Zeros({3, 96});
    int64_t n = 0;
    for (size_t i = 0; i < data.train_x.size(); ++i) {
      if (data.train_y[i] == k) {
        acc = Add(acc, data.train_x[i]);
        ++n;
      }
    }
    centroids.push_back(MulScalar(acc, 1.0f / static_cast<float>(n)));
  }
  int64_t correct = 0;
  for (size_t i = 0; i < data.test_x.size(); ++i) {
    double best = -1e30;
    int64_t best_k = -1;
    for (int64_t k = 0; k < 3; ++k) {
      const double score =
          SumAll(Mul(data.test_x[i], centroids[static_cast<size_t>(k)])).item();
      if (score > best) {
        best = score;
        best_k = k;
      }
    }
    if (best_k == data.test_y[i]) ++correct;
  }
  // Well above the 33% chance level.
  EXPECT_GT(correct, 30);
}

}  // namespace
}  // namespace msd
