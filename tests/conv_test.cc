// Tests for the 2D convolution kernels and their autograd wrapper.
#include "tensor/conv.h"

#include <tuple>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "nn/conv_layer.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(ConvTest, OutSizeFormula) {
  EXPECT_EQ(ConvOutSize(5, 3, {1, 0}), 3);
  EXPECT_EQ(ConvOutSize(5, 3, {1, 1}), 5);
  EXPECT_EQ(ConvOutSize(7, 3, {2, 0}), 3);
  EXPECT_EQ(ConvOutSize(4, 4, {1, 0}), 1);
}

TEST(ConvTest, IdentityKernelReproducesInput) {
  Rng rng(1);
  Tensor x = Tensor::RandNormal({1, 1, 4, 5}, 0, 1, rng);
  Tensor k = Tensor::Ones({1, 1, 1, 1});
  Tensor y = Conv2d(x, k);
  EXPECT_TRUE(AllClose(y, x, 0.0f, 0.0f));
}

TEST(ConvTest, HandComputed2x2) {
  // input 1x1x2x3 = [[1,2,3],[4,5,6]], kernel 1x1x2x2 = [[1,0],[0,1]].
  Tensor x({1, 1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor k({1, 1, 2, 2}, {1, 0, 0, 1});
  Tensor y = Conv2d(x, k);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(y.at({0, 0, 0, 0}), 1.0f + 5.0f);
  EXPECT_EQ(y.at({0, 0, 0, 1}), 2.0f + 6.0f);
}

TEST(ConvTest, PaddingKeepsSpatialSize) {
  Rng rng(2);
  Tensor x = Tensor::RandNormal({2, 3, 6, 6}, 0, 1, rng);
  Tensor k = Tensor::RandNormal({4, 3, 3, 3}, 0, 1, rng);
  Tensor y = Conv2d(x, k, {1, 1});
  EXPECT_EQ(y.shape(), (Shape{2, 4, 6, 6}));
}

TEST(ConvTest, StrideDownsamples) {
  Rng rng(3);
  Tensor x = Tensor::RandNormal({1, 2, 8, 8}, 0, 1, rng);
  Tensor k = Tensor::RandNormal({2, 2, 2, 2}, 0, 1, rng);
  Tensor y = Conv2d(x, k, {2, 0});
  EXPECT_EQ(y.shape(), (Shape{1, 2, 4, 4}));
}

TEST(ConvTest, SumsOverInputChannels) {
  // Two channels, kernel picks each with weight 1: output = c0 + c1.
  Tensor x({1, 2, 1, 2}, {1, 2, 10, 20});
  Tensor k({1, 2, 1, 1}, {1, 1});
  Tensor y = Conv2d(x, k);
  EXPECT_TRUE(AllClose(y, Tensor({1, 1, 1, 2}, {11, 22})));
}

class ConvGradSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ConvGradSweep, InputGradientMatchesNumeric) {
  const auto& [stride, padding] = GetParam();
  Rng rng(4);
  Tensor kernel = Tensor::RandNormal({2, 2, 3, 3}, 0, 0.5f, rng);
  GradCheckResult result = CheckGradient(
      [&](const Variable& x) {
        return MeanAll(Square(Conv2d(x, Variable(kernel), stride, padding)));
      },
      Tensor::RandNormal({1, 2, 6, 7}, 0, 1, rng));
  EXPECT_TRUE(result.ok) << result.ToString();
}

TEST_P(ConvGradSweep, KernelGradientMatchesNumeric) {
  const auto& [stride, padding] = GetParam();
  Rng rng(5);
  Tensor input = Tensor::RandNormal({2, 2, 6, 6}, 0, 1, rng);
  GradCheckResult result = CheckGradient(
      [&](const Variable& k) {
        return MeanAll(Square(Conv2d(Variable(input), k, stride, padding)));
      },
      Tensor::RandNormal({2, 2, 3, 3}, 0, 0.5f, rng));
  EXPECT_TRUE(result.ok) << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(Specs, ConvGradSweep,
                         ::testing::Values(std::make_tuple(1, 0),
                                           std::make_tuple(1, 1),
                                           std::make_tuple(2, 0),
                                           std::make_tuple(2, 1)));

TEST(Conv2dLayerTest, ShapeBiasAndGradients) {
  Rng rng(6);
  Conv2dLayer layer(3, 5, 3, rng, /*stride=*/1, /*padding=*/1);
  Variable x(Tensor::RandNormal({2, 3, 4, 4}, 0, 1, rng));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4, 4}));
  SumAll(Square(y)).Backward();
  for (const Variable& p : layer.Parameters()) EXPECT_TRUE(p.has_grad());
  EXPECT_EQ(layer.NumParameters(), 5 * 3 * 3 * 3 + 5);
}

TEST(Conv2dLayerTest, LearnsAnEdgeDetector) {
  // Fit a layer to reproduce a fixed target convolution.
  Rng rng(7);
  Conv2dLayer layer(1, 1, 3, rng, 1, 1);
  Tensor target_kernel({1, 1, 3, 3}, {0, -1, 0, -1, 4, -1, 0, -1, 0});
  Adam opt(layer.Parameters(), 0.05f);
  float last = 1e9f;
  for (int step = 0; step < 500; ++step) {
    Tensor x = Tensor::RandNormal({4, 1, 8, 8}, 0, 1, rng);
    Tensor y = Conv2d(x, target_kernel, {1, 1});
    opt.ZeroGrad();
    Variable loss = MeanAll(Square(Sub(layer.Forward(Variable(x)), Variable(y))));
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, 0.08f);
}

TEST(ConvTest, ChannelMismatchDies) {
  Tensor x = Tensor::Zeros({1, 3, 4, 4});
  Tensor k = Tensor::Zeros({1, 2, 2, 2});
  EXPECT_DEATH(Conv2d(x, k), "channel mismatch");
}

}  // namespace
}  // namespace msd
