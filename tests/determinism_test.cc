// Bit-determinism suite for the parallel runtime: forward losses, gradients,
// reductions, and fully trained models must be byte-identical for every
// MSD_THREADS value (the contract in docs/RUNTIME.md). Comparisons are exact
// — memcmp over float buffers, no tolerances.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/ops.h"
#include "core/msd_mixer.h"
#include "data/window_dataset.h"
#include "runtime/parallel.h"
#include "tasks/task_model.h"
#include "tasks/trainer.h"
#include "tensor/fft.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

constexpr int64_t kThreadCounts[] = {1, 2, 8};

void ExpectBitIdentical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs bitwise across thread counts";
}

MsdMixerConfig SmallForecastConfig() {
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 3;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 24;
  return config;
}

TEST(DeterminismTest, ElementwiseAndMatMulKernels) {
  Rng rng(5);
  Tensor a = Tensor::RandNormal({4, 7, 96}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({4, 7, 96}, 0, 1, rng);
  Tensor m1 = Tensor::RandNormal({33, 65}, 0, 1, rng);
  Tensor m2 = Tensor::RandNormal({65, 17}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({96}, 0, 1, rng);

  std::vector<Tensor> sums, gelus, mats, biased;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    sums.push_back(Add(a, b));
    gelus.push_back(Gelu(a));
    mats.push_back(MatMul(m1, m2));
    biased.push_back(Add(a, bias));
  }
  for (size_t k = 1; k < sums.size(); ++k) {
    ExpectBitIdentical(sums[0], sums[k], "Add");
    ExpectBitIdentical(gelus[0], gelus[k], "Gelu");
    ExpectBitIdentical(mats[0], mats[k], "MatMul");
    ExpectBitIdentical(biased[0], biased[k], "broadcast Add");
  }
}

TEST(DeterminismTest, ReductionsAndFft) {
  Rng rng(11);
  // Large enough to split into many chunks; values span magnitudes so the
  // combine order would show in the low bits if it varied.
  Tensor t = Tensor::RandNormal({32, 7, 512}, 0, 100, rng);
  Tensor series = Tensor::RandNormal({7, 256}, 0, 1, rng);

  std::vector<Tensor> sum_all;
  std::vector<float> max_abs;
  std::vector<std::vector<int64_t>> periods;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    sum_all.push_back(SumAll(t));
    max_abs.push_back(MaxAbs(t));
    periods.push_back(TopPeriodsFft(series, 3));
  }
  for (size_t k = 1; k < sum_all.size(); ++k) {
    ExpectBitIdentical(sum_all[0], sum_all[k], "SumAll");
    EXPECT_EQ(max_abs[0], max_abs[k]);  // exact: no tolerance
    EXPECT_EQ(periods[0], periods[k]);
  }
}

TEST(DeterminismTest, BlockedGemmShapeSweep) {
  // Shapes chosen to hit every edge of the blocked GEMM (tensor/gemm.h):
  // m/n tails smaller than the 8x8 register tile, k spilling past the 256
  // k-slice, and m spanning several 64-row parallel tiles. The tiling is a
  // pure function of the shape, so each product must be byte-stable across
  // pool sizes.
  const int64_t shapes[][3] = {
      {5, 300, 2}, {33, 65, 17}, {257, 64, 9}, {64, 256, 64}};
  Rng rng(23);
  for (const auto& s : shapes) {
    Tensor a = Tensor::RandNormal({s[0], s[1]}, 0, 1, rng);
    Tensor b = Tensor::RandNormal({s[1], s[2]}, 0, 1, rng);
    std::vector<Tensor> outs;
    for (int64_t threads : kThreadCounts) {
      runtime::ScopedThreads scoped(threads);
      outs.push_back(MatMul(a, b));
    }
    for (size_t k = 1; k < outs.size(); ++k) {
      ExpectBitIdentical(outs[0], outs[k], "blocked GEMM");
    }
  }
}

TEST(DeterminismTest, BatchedAndFusedMatMulBitIdentical) {
  Rng rng(29);
  // Shared-B batch (the flattened single-GEMM fast path).
  Tensor a = Tensor::RandNormal({6, 5, 4, 24}, 0, 1, rng);
  Tensor w = Tensor::RandNormal({24, 16}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({16}, 0, 1, rng);
  // True batched product (per-batch GEMM dispatch).
  Tensor ab = Tensor::RandNormal({3, 4, 12, 20}, 0, 1, rng);
  Tensor bb = Tensor::RandNormal({3, 4, 20, 8}, 0, 1, rng);

  const gemm::Activation acts[] = {
      gemm::Activation::kIdentity, gemm::Activation::kRelu,
      gemm::Activation::kGelu, gemm::Activation::kTanh,
      gemm::Activation::kSigmoid};
  std::vector<Tensor> shared, batched;
  std::vector<std::vector<Tensor>> fused;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    shared.push_back(MatMul(a, w));
    batched.push_back(MatMul(ab, bb));
    std::vector<Tensor> per_act;
    for (gemm::Activation act : acts) {
      per_act.push_back(MatMulEx(a, w, bias, act));
    }
    fused.push_back(std::move(per_act));
  }
  for (size_t k = 1; k < shared.size(); ++k) {
    ExpectBitIdentical(shared[0], shared[k], "shared-B batched MatMul");
    ExpectBitIdentical(batched[0], batched[k], "true-batched MatMul");
    for (size_t i = 0; i < fused[0].size(); ++i) {
      ExpectBitIdentical(fused[0][i], fused[k][i], "fused MatMulEx epilogue");
    }
  }
}

TEST(DeterminismTest, FusedEpilogueGradientsBitIdentical) {
  Rng rng(31);
  Tensor at = Tensor::RandNormal({4, 12, 20}, 0, 1, rng);
  Tensor wt = Tensor::RandNormal({20, 8}, 0, 1, rng);
  Tensor biast = Tensor::RandNormal({8}, 0, 1, rng);
  const gemm::Activation acts[] = {
      gemm::Activation::kIdentity, gemm::Activation::kRelu,
      gemm::Activation::kGelu, gemm::Activation::kTanh,
      gemm::Activation::kSigmoid};
  for (gemm::Activation act : acts) {
    std::vector<Tensor> da, dw, dbias;
    for (int64_t threads : kThreadCounts) {
      runtime::ScopedThreads scoped(threads);
      Variable a(at, /*requires_grad=*/true);
      Variable w(wt, /*requires_grad=*/true);
      Variable bias(biast, /*requires_grad=*/true);
      MeanAll(Square(MatMulEx(a, w, bias, act))).Backward();
      da.push_back(a.grad().Clone());
      dw.push_back(w.grad().Clone());
      dbias.push_back(bias.grad().Clone());
    }
    for (size_t k = 1; k < da.size(); ++k) {
      ExpectBitIdentical(da[0], da[k], "MatMulEx grad a");
      ExpectBitIdentical(dw[0], dw[k], "MatMulEx grad b");
      ExpectBitIdentical(dbias[0], dbias[k], "MatMulEx grad bias");
    }
  }
}

TEST(DeterminismTest, RfftSpectraExactAcrossThreadCounts) {
  Rng rng(37);
  Tensor noise = Tensor::RandNormal({300}, 0, 1, rng);
  std::vector<float> values(noise.data(), noise.data() + noise.numel());
  Tensor series = Tensor::RandNormal({16, 512}, 0, 1, rng);

  std::vector<std::vector<double>> spectra;
  std::vector<std::vector<int64_t>> periods;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    spectra.push_back(AmplitudeSpectrum(values));
    periods.push_back(TopPeriodsFft(series, 4));
  }
  for (size_t k = 1; k < spectra.size(); ++k) {
    // Exact double equality: the rfft itself is serial and the channel fan
    // out merges in fixed order, so not even the low bits may move.
    EXPECT_EQ(spectra[0], spectra[k]);
    EXPECT_EQ(periods[0], periods[k]);
  }
}

TEST(DeterminismTest, ForwardLossBitIdenticalAcrossThreadCounts) {
  Rng model_rng(7);
  MsdMixer mixer(SmallForecastConfig(), model_rng);
  mixer.SetTraining(false);
  Rng data_rng(3);
  Tensor x = Tensor::RandNormal({8, 3, 48}, 0, 1, data_rng);
  Tensor y = Tensor::RandNormal({8, 3, 24}, 0, 1, data_rng);

  NoGradGuard guard;
  std::vector<Tensor> predictions;
  std::vector<float> losses;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    MsdMixerOutput out = mixer.Run(Variable(x));
    predictions.push_back(out.prediction.value());
    losses.push_back(
        MeanAll(Square(Sub(out.prediction, Variable(y)))).item());
  }
  for (size_t k = 1; k < predictions.size(); ++k) {
    ExpectBitIdentical(predictions[0], predictions[k], "forward prediction");
    EXPECT_EQ(losses[0], losses[k]);
  }
}

TEST(DeterminismTest, GradientsBitIdenticalAcrossThreadCounts) {
  Rng model_rng(7);
  MsdMixer mixer(SmallForecastConfig(), model_rng);
  Rng data_rng(3);
  Tensor x = Tensor::RandNormal({8, 3, 48}, 0, 1, data_rng);
  Tensor y = Tensor::RandNormal({8, 3, 24}, 0, 1, data_rng);

  std::vector<std::vector<Tensor>> grads;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    for (Variable& p : mixer.Parameters()) p.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual, {}), 0.3f));
    loss.Backward();
    std::vector<Tensor> snapshot;
    for (Variable& p : mixer.Parameters()) {
      ASSERT_TRUE(p.has_grad());
      snapshot.push_back(p.grad().Clone());
    }
    grads.push_back(std::move(snapshot));
  }
  for (size_t k = 1; k < grads.size(); ++k) {
    ASSERT_EQ(grads[0].size(), grads[k].size());
    for (size_t p = 0; p < grads[0].size(); ++p) {
      ExpectBitIdentical(grads[0][p], grads[k][p], "parameter gradient");
    }
  }
}

TEST(DeterminismTest, TrainedModelBitIdenticalAcrossThreadCounts) {
  Rng series_rng(13);
  Tensor series = Tensor::RandNormal({3, 300}, 0, 1, series_rng);
  Rng probe_rng(17);
  Tensor probe = Tensor::RandNormal({4, 3, 48}, 0, 1, probe_rng);

  std::vector<Tensor> outputs;
  std::vector<std::vector<float>> epoch_losses;
  for (int64_t threads : kThreadCounts) {
    // Identical seeds per run; only the pool size differs. TrainerConfig's
    // own `threads` knob is exercised here instead of ScopedThreads.
    Rng model_rng(7);
    MsdMixer mixer(SmallForecastConfig(), model_rng);
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.3f);
    ForecastWindowDataset data(series, 48, 24, 4);
    TrainerConfig trainer;
    trainer.epochs = 2;
    trainer.batch_size = 8;
    trainer.max_batches_per_epoch = 4;
    trainer.threads = threads;
    TrainStats stats = Train(model, data, trainer, ForecastMseTaskLoss);
    epoch_losses.push_back(stats.epoch_losses);

    NoGradGuard guard;
    runtime::ScopedThreads scoped(threads);
    outputs.push_back(model.Forward(Variable(probe)).prediction.value());
  }
  for (size_t k = 1; k < outputs.size(); ++k) {
    // Training losses are exactly equal epoch by epoch...
    EXPECT_EQ(epoch_losses[0], epoch_losses[k]);
    // ...and so is every byte the trained model produces.
    ExpectBitIdentical(outputs[0], outputs[k], "trained-model output");
  }
}

}  // namespace
}  // namespace msd
