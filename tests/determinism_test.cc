// Bit-determinism suite for the parallel runtime: forward losses, gradients,
// reductions, and fully trained models must be byte-identical for every
// MSD_THREADS value (the contract in docs/RUNTIME.md). Comparisons are exact
// — memcmp over float buffers, no tolerances.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/msd_mixer.h"
#include "data/window_dataset.h"
#include "runtime/parallel.h"
#include "tasks/task_model.h"
#include "tasks/trainer.h"
#include "tensor/fft.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

constexpr int64_t kThreadCounts[] = {1, 2, 8};

void ExpectBitIdentical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs bitwise across thread counts";
}

MsdMixerConfig SmallForecastConfig() {
  MsdMixerConfig config;
  config.input_length = 48;
  config.channels = 3;
  config.patch_sizes = {12, 4, 1};
  config.model_dim = 8;
  config.hidden_dim = 16;
  config.drop_path = 0.0f;
  config.task = TaskType::kForecast;
  config.horizon = 24;
  return config;
}

TEST(DeterminismTest, ElementwiseAndMatMulKernels) {
  Rng rng(5);
  Tensor a = Tensor::RandNormal({4, 7, 96}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({4, 7, 96}, 0, 1, rng);
  Tensor m1 = Tensor::RandNormal({33, 65}, 0, 1, rng);
  Tensor m2 = Tensor::RandNormal({65, 17}, 0, 1, rng);
  Tensor bias = Tensor::RandNormal({96}, 0, 1, rng);

  std::vector<Tensor> sums, gelus, mats, biased;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    sums.push_back(Add(a, b));
    gelus.push_back(Gelu(a));
    mats.push_back(MatMul(m1, m2));
    biased.push_back(Add(a, bias));
  }
  for (size_t k = 1; k < sums.size(); ++k) {
    ExpectBitIdentical(sums[0], sums[k], "Add");
    ExpectBitIdentical(gelus[0], gelus[k], "Gelu");
    ExpectBitIdentical(mats[0], mats[k], "MatMul");
    ExpectBitIdentical(biased[0], biased[k], "broadcast Add");
  }
}

TEST(DeterminismTest, ReductionsAndFft) {
  Rng rng(11);
  // Large enough to split into many chunks; values span magnitudes so the
  // combine order would show in the low bits if it varied.
  Tensor t = Tensor::RandNormal({32, 7, 512}, 0, 100, rng);
  Tensor series = Tensor::RandNormal({7, 256}, 0, 1, rng);

  std::vector<Tensor> sum_all;
  std::vector<float> max_abs;
  std::vector<std::vector<int64_t>> periods;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    sum_all.push_back(SumAll(t));
    max_abs.push_back(MaxAbs(t));
    periods.push_back(TopPeriodsFft(series, 3));
  }
  for (size_t k = 1; k < sum_all.size(); ++k) {
    ExpectBitIdentical(sum_all[0], sum_all[k], "SumAll");
    EXPECT_EQ(max_abs[0], max_abs[k]);  // exact: no tolerance
    EXPECT_EQ(periods[0], periods[k]);
  }
}

TEST(DeterminismTest, ForwardLossBitIdenticalAcrossThreadCounts) {
  Rng model_rng(7);
  MsdMixer mixer(SmallForecastConfig(), model_rng);
  mixer.SetTraining(false);
  Rng data_rng(3);
  Tensor x = Tensor::RandNormal({8, 3, 48}, 0, 1, data_rng);
  Tensor y = Tensor::RandNormal({8, 3, 24}, 0, 1, data_rng);

  NoGradGuard guard;
  std::vector<Tensor> predictions;
  std::vector<float> losses;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    MsdMixerOutput out = mixer.Run(Variable(x));
    predictions.push_back(out.prediction.value());
    losses.push_back(
        MeanAll(Square(Sub(out.prediction, Variable(y)))).item());
  }
  for (size_t k = 1; k < predictions.size(); ++k) {
    ExpectBitIdentical(predictions[0], predictions[k], "forward prediction");
    EXPECT_EQ(losses[0], losses[k]);
  }
}

TEST(DeterminismTest, GradientsBitIdenticalAcrossThreadCounts) {
  Rng model_rng(7);
  MsdMixer mixer(SmallForecastConfig(), model_rng);
  Rng data_rng(3);
  Tensor x = Tensor::RandNormal({8, 3, 48}, 0, 1, data_rng);
  Tensor y = Tensor::RandNormal({8, 3, 24}, 0, 1, data_rng);

  std::vector<std::vector<Tensor>> grads;
  for (int64_t threads : kThreadCounts) {
    runtime::ScopedThreads scoped(threads);
    for (Variable& p : mixer.Parameters()) p.ZeroGrad();
    MsdMixerOutput out = mixer.Run(Variable(x));
    Variable loss = Add(MeanAll(Square(Sub(out.prediction, Variable(y)))),
                        MulScalar(ResidualLoss(out.residual, {}), 0.3f));
    loss.Backward();
    std::vector<Tensor> snapshot;
    for (Variable& p : mixer.Parameters()) {
      ASSERT_TRUE(p.has_grad());
      snapshot.push_back(p.grad().Clone());
    }
    grads.push_back(std::move(snapshot));
  }
  for (size_t k = 1; k < grads.size(); ++k) {
    ASSERT_EQ(grads[0].size(), grads[k].size());
    for (size_t p = 0; p < grads[0].size(); ++p) {
      ExpectBitIdentical(grads[0][p], grads[k][p], "parameter gradient");
    }
  }
}

TEST(DeterminismTest, TrainedModelBitIdenticalAcrossThreadCounts) {
  Rng series_rng(13);
  Tensor series = Tensor::RandNormal({3, 300}, 0, 1, series_rng);
  Rng probe_rng(17);
  Tensor probe = Tensor::RandNormal({4, 3, 48}, 0, 1, probe_rng);

  std::vector<Tensor> outputs;
  std::vector<std::vector<float>> epoch_losses;
  for (int64_t threads : kThreadCounts) {
    // Identical seeds per run; only the pool size differs. TrainerConfig's
    // own `threads` knob is exercised here instead of ScopedThreads.
    Rng model_rng(7);
    MsdMixer mixer(SmallForecastConfig(), model_rng);
    MsdMixerTaskModel model(&mixer, /*lambda=*/0.3f);
    ForecastWindowDataset data(series, 48, 24, 4);
    TrainerConfig trainer;
    trainer.epochs = 2;
    trainer.batch_size = 8;
    trainer.max_batches_per_epoch = 4;
    trainer.threads = threads;
    TrainStats stats = Train(model, data, trainer, ForecastMseTaskLoss);
    epoch_losses.push_back(stats.epoch_losses);

    NoGradGuard guard;
    runtime::ScopedThreads scoped(threads);
    outputs.push_back(model.Forward(Variable(probe)).prediction.value());
  }
  for (size_t k = 1; k < outputs.size(); ++k) {
    // Training losses are exactly equal epoch by epoch...
    EXPECT_EQ(epoch_losses[0], epoch_losses[k]);
    // ...and so is every byte the trained model produces.
    ExpectBitIdentical(outputs[0], outputs[k], "trained-model output");
  }
}

}  // namespace
}  // namespace msd
