// Stress and fuzz-style property tests: randomized autograd graphs verified
// against numerical gradients, mixer configuration sweeps, and adversarial
// inputs through the data pipeline.
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "core/msd_mixer.h"
#include "core/residual_loss.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

// Builds a random computation graph from a fixed op vocabulary and verifies
// its gradient numerically. Each seed produces a different graph.
class RandomGraphStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphStress, RandomCompositeGradientsMatchNumeric) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int64_t rows = 2 + rng.UniformInt(3);
  const int64_t cols = 2 + rng.UniformInt(4);
  Tensor x0 = Tensor::RandNormal({rows, cols}, 0.5f, 0.8f, rng);

  // Capture constants outside the lambda so f is pure.
  Tensor c1 = Tensor::RandNormal({cols}, 0.0f, 0.5f, rng);
  Tensor c2 = Tensor::RandNormal({rows, 1}, 0.0f, 0.5f, rng);
  Tensor w = Tensor::RandNormal({cols, 3}, 0.0f, 0.5f, rng);
  std::vector<int64_t> op_choices;
  for (int i = 0; i < 6; ++i) op_choices.push_back(rng.UniformInt(8));

  auto f = [&](const Variable& x) {
    Variable h = x;
    for (int64_t op : op_choices) {
      switch (op) {
        case 0:
          h = Add(h, Variable(c1));
          break;
        case 1:
          h = Mul(h, Variable(c2));
          break;
        case 2:
          h = Gelu(h);
          break;
        case 3:
          h = Tanh(h);
          break;
        case 4:
          h = Sigmoid(h);
          break;
        case 5:
          h = AddScalar(Square(h), 0.1f);
          break;
        case 6:
          h = Softmax(h, -1);
          break;
        case 7:
          h = Sub(h, Mean(h, {1}, /*keepdim=*/true));
          break;
        default:
          break;
      }
    }
    Variable projected = MatMul(h, Variable(w));
    return MeanAll(Square(projected));
  };
  GradCheckResult result = CheckGradient(f, x0);
  EXPECT_TRUE(result.ok) << result.ToString() << " (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphStress,
                         ::testing::Range<uint64_t>(1, 21));

// Sweeps mixer configurations: decomposition identity and output shapes must
// hold for every combination.
class MixerConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, std::vector<int64_t>>> {};

TEST_P(MixerConfigSweep, IdentityAndShapes) {
  const auto& [channels, length, patches] = GetParam();
  MsdMixerConfig config;
  config.input_length = length;
  config.channels = channels;
  config.patch_sizes = patches;
  config.model_dim = 6;
  config.hidden_dim = 10;
  config.task = TaskType::kForecast;
  config.horizon = 7;
  Rng rng(42);
  MsdMixer mixer(config, rng);
  Variable x(Tensor::RandNormal({3, channels, length}, 0, 1, rng));
  MsdMixerOutput out = mixer.Run(x, /*collect_components=*/true);
  EXPECT_EQ(out.prediction.shape(), (Shape{3, channels, 7}));
  Tensor sum = out.residual.value().Clone();
  for (const Variable& s : out.components) sum = Add(sum, s.value());
  EXPECT_TRUE(AllClose(sum, x.value(), 1e-4f, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MixerConfigSweep,
    ::testing::Values(
        std::make_tuple<int64_t, int64_t>(1, 16, std::vector<int64_t>{4, 1}),
        std::make_tuple<int64_t, int64_t>(3, 30, std::vector<int64_t>{7, 3, 1}),
        std::make_tuple<int64_t, int64_t>(2, 96,
                                          std::vector<int64_t>{24, 12, 6, 2, 1}),
        std::make_tuple<int64_t, int64_t>(5, 50, std::vector<int64_t>{50, 1}),
        std::make_tuple<int64_t, int64_t>(2, 17, std::vector<int64_t>{5, 2}),
        std::make_tuple<int64_t, int64_t>(4, 64, std::vector<int64_t>{8, 8, 8})));

TEST(MixerStress, ResidualLossGradStableAcrossScales) {
  // The residual loss must stay finite for residuals of very different
  // magnitudes (early vs late in training).
  Rng rng(7);
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    Variable z(MulScalar(Tensor::RandNormal({2, 3, 32}, 0, 1, rng), scale),
               true);
    Variable loss = ResidualLoss(z);
    loss.Backward();
    EXPECT_FALSE(HasNonFinite(z.grad())) << "scale " << scale;
    EXPECT_TRUE(std::isfinite(loss.item())) << "scale " << scale;
  }
}

TEST(MixerStress, ConstantInputDoesNotBlowUp) {
  // Constant windows give zero variance; the ACF denominator must not
  // produce NaNs.
  MsdMixerConfig config;
  config.input_length = 24;
  config.channels = 2;
  config.patch_sizes = {6, 1};
  config.model_dim = 4;
  config.hidden_dim = 8;
  config.task = TaskType::kForecast;
  config.horizon = 4;
  Rng rng(9);
  MsdMixer mixer(config, rng);
  Variable x(Tensor::Full({2, 2, 24}, 5.0f));
  MsdMixerOutput out = mixer.Run(x);
  Variable loss = Add(MeanAll(Square(out.prediction)),
                      ResidualLoss(out.residual));
  loss.Backward();
  EXPECT_TRUE(std::isfinite(loss.item()));
  for (const Variable& p : mixer.Parameters()) {
    if (p.has_grad()) {
      EXPECT_FALSE(HasNonFinite(p.grad()));
    }
  }
}

TEST(GradcheckLibTest, DetectsWrongGradient) {
  // A function whose "gradient" is broken via Detach must fail gradcheck.
  auto broken = [](const Variable& x) {
    // Value depends on x quadratically but the recorded graph only sees the
    // linear part: f(x) = sum(x * detach(x)).
    return SumAll(Mul(x, x.Detach()));
  };
  Rng rng(11);
  GradCheckResult result =
      CheckGradient(broken, Tensor::RandNormal({4}, 1.0f, 0.3f, rng));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.ToString().find("FAILED"), std::string::npos);
}

TEST(GradcheckLibTest, PassesForCorrectGradient) {
  Rng rng(12);
  GradCheckResult result = CheckGradient(
      [](const Variable& x) { return MeanAll(Square(Gelu(x))); },
      Tensor::RandNormal({3, 3}, 0, 1, rng));
  EXPECT_TRUE(result.ok) << result.ToString();
}

}  // namespace
}  // namespace msd
