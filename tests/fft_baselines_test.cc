// Tests for the FFT utilities, TimesNet-lite, and the Transformer
// forecaster.
#include "tensor/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/timesnet_lite.h"
#include "baselines/transformer_forecaster.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.Gaussian(), rng.Gaussian()};
    original[i] = data[i];
  }
  Fft(data);
  Fft(data, /*inverse=*/true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real() / 64.0, original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag() / 64.0, original[i].imag(), 1e-9);
  }
}

TEST(FftTest, MatchesNaiveDftOnRandomSignal) {
  Rng rng(2);
  const size_t n = 32;
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.Gaussian(), 0.0};
  std::vector<std::complex<double>> fft_result = data;
  Fft(fft_result);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) / n;
      acc += data[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    EXPECT_NEAR(fft_result[k].real(), acc.real(), 1e-8);
    EXPECT_NEAR(fft_result[k].imag(), acc.imag(), 1e-8);
  }
}

TEST(FftTest, NonPowerOfTwoDies) {
  std::vector<std::complex<double>> data(10);
  EXPECT_DEATH(Fft(data), "power of two");
}

TEST(FftTest, AmplitudeSpectrumPeaksAtSignalFrequency) {
  // Period 16 on a 128-point grid: bin 8.
  std::vector<float> signal(128);
  for (size_t t = 0; t < signal.size(); ++t) {
    signal[t] = std::sin(2.0f * static_cast<float>(M_PI) * t / 16.0f);
  }
  const auto amplitude = AmplitudeSpectrum(signal);
  size_t argmax = 1;
  for (size_t k = 1; k < amplitude.size(); ++k) {
    if (amplitude[k] > amplitude[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 8u);
}

TEST(FftTest, TopPeriodsFindsPlantedPeriods) {
  Tensor series({2, 128});
  for (int64_t c = 0; c < 2; ++c) {
    for (int64_t t = 0; t < 128; ++t) {
      series.set({c, t},
                 std::sin(2.0f * static_cast<float>(M_PI) * t / 32.0f) +
                     0.5f * std::sin(2.0f * static_cast<float>(M_PI) * t /
                                     8.0f));
    }
  }
  const auto periods = TopPeriodsFft(series, 2);
  ASSERT_GE(periods.size(), 1u);
  EXPECT_EQ(periods[0], 32);
  if (periods.size() > 1) {
    EXPECT_EQ(periods[1], 8);
  }
}

// ---- TimesNet-lite -----------------------------------------------------------

Tensor PeriodicReference(int64_t channels, int64_t length, int64_t period) {
  Tensor t({channels, length});
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t i = 0; i < length; ++i) {
      t.set({c, i}, std::sin(2.0f * static_cast<float>(M_PI) * i /
                                 static_cast<float>(period) +
                             0.5f * c));
    }
  }
  return t;
}

TEST(TimesNetLiteTest, DetectsReferencePeriodAndShapes) {
  Rng rng(3);
  Tensor reference = PeriodicReference(3, 512, 24);
  TimesNetLite model(96, 48, 3, reference, rng, /*top_k=*/2);
  ASSERT_FALSE(model.periods().empty());
  EXPECT_EQ(model.periods()[0], 24);
  Variable x(Tensor::RandNormal({2, 3, 96}, 0, 1, rng));
  EXPECT_EQ(model.Forward(x).shape(), (Shape{2, 3, 48}));
}

TEST(TimesNetLiteTest, GradientsReachAllParameters) {
  Rng rng(4);
  Tensor reference = PeriodicReference(2, 256, 16);
  TimesNetLite model(32, 8, 2, reference, rng, 2, 8, 16);
  Variable x(Tensor::RandNormal({2, 2, 32}, 0, 1, rng));
  SumAll(Square(model.Forward(x))).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(TimesNetLiteTest, LearnsPeriodicContinuation) {
  Rng rng(5);
  Tensor reference = PeriodicReference(1, 256, 12);
  TimesNetLite model(48, 12, 1, reference, rng, 1, 12, 24);
  Adam opt(model.Parameters(), 3e-3f);
  float last = 1e9f;
  for (int step = 0; step < 150; ++step) {
    Tensor x({8, 1, 48});
    Tensor y({8, 1, 12});
    Rng data_rng(900 + step);
    for (int64_t b = 0; b < 8; ++b) {
      const float phase = data_rng.Uniform(0.0f, 6.28f);
      for (int64_t t = 0; t < 48; ++t) {
        x.set({b, 0, t},
              std::sin(2.0f * static_cast<float>(M_PI) * t / 12.0f + phase));
      }
      for (int64_t t = 0; t < 12; ++t) {
        y.set({b, 0, t}, std::sin(2.0f * static_cast<float>(M_PI) * (48 + t) /
                                      12.0f +
                                  phase));
      }
    }
    opt.ZeroGrad();
    Variable loss =
        MeanAll(Square(Sub(model.Forward(Variable(x)), Variable(y))));
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, 0.1f);
}

TEST(TimesNetLiteTest, ConvVariantShapesAndGradients) {
  Rng rng(8);
  Tensor reference = PeriodicReference(2, 256, 16);
  TimesNetLite model(32, 8, 2, reference, rng, 2, 8, 16, /*use_conv=*/true);
  Variable x(Tensor::RandNormal({2, 2, 32}, 0, 1, rng));
  Variable y = model.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 8}));
  SumAll(Square(y)).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

// ---- Transformer forecaster ------------------------------------------------------

TEST(TransformerForecasterTest, ShapeAndGradients) {
  Rng rng(6);
  TransformerForecasterConfig config;
  config.input_length = 32;
  config.horizon = 8;
  config.model_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 1;
  TransformerForecaster model(config, 4, rng);
  Variable x(Tensor::RandNormal({2, 4, 32}, 0, 1, rng));
  Variable y = model.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 8}));
  SumAll(Square(y)).Backward();
  for (const Variable& p : model.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(TransformerForecasterTest, RevInShiftEquivariance) {
  Rng rng(7);
  TransformerForecasterConfig config;
  config.input_length = 32;
  config.horizon = 8;
  config.model_dim = 16;
  config.num_heads = 2;
  config.num_blocks = 1;
  TransformerForecaster model(config, 2, rng);
  model.SetTraining(false);
  Variable x(Tensor::RandNormal({1, 2, 32}, 0, 1, rng));
  Tensor base = model.Forward(x).value();
  Tensor moved =
      model.Forward(Variable(AddScalar(x.value(), 10.0f))).value();
  EXPECT_TRUE(AllClose(AddScalar(base, 10.0f), moved, 1e-2f, 1e-3f));
}

}  // namespace
}  // namespace msd
