// Tests for attention, RevIN, and checkpoint serialization.
#include "nn/attention.h"

#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "nn/revin.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace msd {
namespace {

TEST(AttentionTest, OutputShapePreserved) {
  Rng rng(1);
  MultiHeadSelfAttention attn(16, 4, rng);
  Variable x(Tensor::RandNormal({2, 10, 16}, 0, 1, rng));
  EXPECT_EQ(attn.Forward(x).shape(), (Shape{2, 10, 16}));
}

TEST(AttentionTest, HeadsMustDivideModelDim) {
  Rng rng(2);
  EXPECT_DEATH(MultiHeadSelfAttention(10, 4, rng), "divisible");
}

TEST(AttentionTest, GradientsReachAllParameters) {
  Rng rng(3);
  MultiHeadSelfAttention attn(8, 2, rng);
  Variable x(Tensor::RandNormal({2, 5, 8}, 0, 1, rng));
  SumAll(Square(attn.Forward(x))).Backward();
  for (const Variable& p : attn.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(AttentionTest, PermutationEquivariantWithoutPositions) {
  // Pure self-attention commutes with permutations of the sequence.
  Rng rng(4);
  MultiHeadSelfAttention attn(8, 2, rng);
  attn.SetTraining(false);
  Variable x(Tensor::RandNormal({1, 4, 8}, 0, 1, rng));
  Tensor y = attn.Forward(x).value();
  // Reverse the sequence.
  std::vector<Tensor> rows;
  for (int64_t i = 3; i >= 0; --i) {
    rows.push_back(Slice(x.value(), 1, i, 1));
  }
  Variable reversed(Concat(rows, 1));
  Tensor y_rev = attn.Forward(reversed).value();
  for (int64_t i = 0; i < 4; ++i) {
    Tensor a = Slice(y, 1, i, 1);
    Tensor b = Slice(y_rev, 1, 3 - i, 1);
    EXPECT_TRUE(AllClose(a, b, 1e-4f, 1e-3f)) << "position " << i;
  }
}

TEST(AttentionTest, AttendsToInformativePositions) {
  // A learnable sanity check: an encoder block can fit a target that
  // requires mixing across positions.
  Rng rng(5);
  TransformerEncoderBlock block(8, 2, 16, rng);
  Tensor x = Tensor::RandNormal({4, 6, 8}, 0, 1, rng);
  // Target: mean over sequence positions, broadcast back.
  Tensor target = ExpandTo(Mean(x, {1}, true), {4, 6, 8});
  Adam opt(block.Parameters(), 0.01f);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 150; ++step) {
    opt.ZeroGrad();
    Variable loss =
        MeanAll(Square(Sub(block.Forward(Variable(x)), Variable(target))));
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(TransformerBlockTest, ShapeAndEvalDeterminism) {
  Rng rng(6);
  TransformerEncoderBlock block(16, 4, 32, rng, /*dropout=*/0.3f);
  block.SetTraining(false);
  Variable x(Tensor::RandNormal({2, 7, 16}, 0, 1, rng));
  Tensor a = block.Forward(x).value();
  Tensor b = block.Forward(x).value();
  EXPECT_EQ(a.shape(), (Shape{2, 7, 16}));
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
}

// ---- RevIN ------------------------------------------------------------------

TEST(RevInTest, NormalizeThenDenormalizeIsIdentity) {
  Rng rng(7);
  Variable x(Tensor::RandNormal({3, 4, 20}, 5.0f, 3.0f, rng));
  RevInStats stats = ComputeRevInStats(x);
  Variable z = RevInNormalize(x, stats);
  Variable back = RevInDenormalize(z, stats);
  EXPECT_TRUE(AllClose(back.value(), x.value(), 1e-3f, 1e-3f));
}

TEST(RevInTest, NormalizedSeriesHasZeroMeanUnitVar) {
  Rng rng(8);
  Variable x(Tensor::RandNormal({2, 3, 50}, -7.0f, 2.0f, rng));
  Variable z = RevInNormalize(x, ComputeRevInStats(x));
  Tensor mean = Mean(z.value(), {2}, false);
  EXPECT_LT(MaxAbs(mean), 1e-4f);
  Tensor var = Mean(Square(z.value()), {2}, false);
  for (int64_t i = 0; i < var.numel(); ++i) {
    EXPECT_NEAR(var.data()[i], 1.0f, 2e-2f);
  }
}

TEST(RevInTest, DenormalizeBroadcastsOverDifferentLength) {
  Rng rng(9);
  Variable x(Tensor::RandNormal({1, 2, 30}, 3.0f, 1.0f, rng));
  RevInStats stats = ComputeRevInStats(x);
  Variable forecast(Tensor::Zeros({1, 2, 10}));
  Tensor restored = RevInDenormalize(forecast, stats).value();
  // Zero normalized forecast denormalizes to the per-channel mean.
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(restored.at({0, c, 5}), stats.mean.value().at({0, c, 0}),
                1e-5f);
  }
}

TEST(RevInTest, GradientFlowsThroughStats) {
  Rng rng(10);
  Variable x(Tensor::RandNormal({2, 2, 16}, 0, 1, rng), true);
  RevInStats stats = ComputeRevInStats(x);
  Variable z = RevInNormalize(x, stats);
  SumAll(Square(z)).Backward();
  EXPECT_TRUE(x.has_grad());
}

// ---- Serialization --------------------------------------------------------------

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(11);
  Sequential model;
  model.Add(std::make_unique<Linear>(4, 8, rng))
      .Add(std::make_unique<Activation>(ActivationKind::kGelu))
      .Add(std::make_unique<Linear>(8, 2, rng));
  Variable x(Tensor::RandNormal({3, 4}, 0, 1, rng));
  Tensor before = model.Forward(x).value();

  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // A second model with different init must reproduce the first after load.
  Rng rng2(999);
  Sequential other;
  other.Add(std::make_unique<Linear>(4, 8, rng2))
      .Add(std::make_unique<Activation>(ActivationKind::kGelu))
      .Add(std::make_unique<Linear>(8, 2, rng2));
  EXPECT_FALSE(AllClose(other.Forward(x).value(), before, 1e-5f, 1e-5f));
  Status status = LoadCheckpoint(other, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(AllClose(other.Forward(x).value(), before, 0.0f, 0.0f));
}

TEST(SerializeTest, LoadMissingFileFails) {
  Rng rng(12);
  Sequential model;
  model.Add(std::make_unique<Linear>(2, 2, rng));
  Status status = LoadCheckpoint(model, "/nonexistent/path/ckpt.bin");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(13);
  Sequential small;
  small.Add(std::make_unique<Linear>(2, 2, rng));
  const std::string path = ::testing::TempDir() + "/ckpt_mismatch.bin";
  ASSERT_TRUE(SaveCheckpoint(small, path).ok());
  Sequential big;
  big.Add(std::make_unique<Linear>(2, 3, rng));
  Status status = LoadCheckpoint(big, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
}

TEST(SerializeTest, ParameterCountMismatchFails) {
  Rng rng(14);
  Sequential one;
  one.Add(std::make_unique<Linear>(2, 2, rng));
  const std::string path = ::testing::TempDir() + "/ckpt_count.bin";
  ASSERT_TRUE(SaveCheckpoint(one, path).ok());
  Sequential two;
  two.Add(std::make_unique<Linear>(2, 2, rng))
      .Add(std::make_unique<Linear>(2, 2, rng));
  EXPECT_FALSE(LoadCheckpoint(two, path).ok());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = ::testing::TempDir() + "/ckpt_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  Rng rng(15);
  Sequential model;
  model.Add(std::make_unique<Linear>(2, 2, rng));
  Status status = LoadCheckpoint(model, path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not an MSD checkpoint"), std::string::npos);
}

}  // namespace
}  // namespace msd
